// Package collectserver implements the fingerprint-collection backend the
// paper's study site ran on (§2.2, an Angular + Firebase deployment): a
// consent-gated HTTP API that issues collection sessions, ingests batched
// elementary fingerprints, and exports the dataset for analysis.
//
// API (JSON over HTTP; every /api/v1 route speaks the typed envelope of
// api.go and carries X-API-Version). The authoritative, machine-readable
// surface is the route table in routes.go, served live at GET /api/v1;
// the highlights:
//
//	GET  /api/v1                     route catalog (methods, features, error codes)
//	GET  /api/v1/study               study metadata + consent text
//	POST /api/v1/sessions            begin a session (consent click) → token
//	POST /api/v1/fingerprints        submit a batch (session token required)
//	POST /api/v1/verify              authentication decision for a claimed user
//	GET  /api/v1/stats               record counts, ?vector= filterable
//	GET  /api/v1/export              NDJSON dump (admin token required)
//	GET  /api/v1/analytics/*         live analytics snapshots (streaming engine)
//	GET  /api/v1/analytics/verify    verification decision counters + calibration
package collectserver

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/obs/series"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/vectors"
	"repro/internal/verify"
	"repro/internal/watch"
)

// Config parameterizes the server.
// RecordStore is the persistence surface the server writes to and reads
// back: a single storage.Store, or shard.Stores fanning appends across a
// per-shard segment chain. Append must be safe for concurrent use;
// All/WriteTo serve the stats and export routes.
type RecordStore interface {
	Append(recs ...storage.Record) error
	All() ([]storage.Record, error)
	WriteTo(w io.Writer) (int64, error)
	Count() int
}

// Analytics is the serving side of the live analytics plane: a single
// streaming.Engine, or shard.Router answering from a merged cross-shard
// snapshot. EnqueueContext must not block on the caller's critical path
// beyond queue backpressure.
type Analytics interface {
	EnqueueContext(ctx context.Context, recs []storage.Record)
	Diversity() streaming.EntropySnapshot
	Clusters() streaming.ClusterSnapshot
	Stability() streaming.StabilitySnapshot
	AMI() *streaming.AMISnapshot
	Status() streaming.StatusSnapshot
}

type Config struct {
	// Store receives accepted records. Required. Concrete implementations:
	// *storage.Store (single) and *shard.Stores (partitioned). Beware the
	// typed-nil trap: assign only a non-nil concrete value.
	Store RecordStore
	// AdminToken authorizes /api/v1/export. Empty disables export.
	AdminToken string
	// MaxBatch bounds records per submission (default 256).
	MaxBatch int
	// MaxIterations bounds the iteration index (default 100).
	MaxIterations int
	// SessionTTL expires idle sessions (default 30 minutes).
	SessionTTL time.Duration
	// MaxRecordsPerSession caps one session's total submissions
	// (default 10000 — far above the study's 210 per participant).
	MaxRecordsPerSession int
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// Now supplies time (tests override it); nil means time.Now.
	Now func() time.Time
	// SessionRatePerMin caps session creations per client IP per minute
	// (default 30; ≤ 0 keeps the default, use a huge value to disable).
	SessionRatePerMin float64
	// Registry receives the server's metrics and backs /metrics. Nil uses
	// obs.Default, so one scrape also covers the render/storage telemetry
	// of libraries sharing the process.
	Registry *obs.Registry
	// EnableDebug mounts /debug/pprof/* and /debug/vars on the handler.
	// Off by default: profiling endpoints leak operational detail and
	// belong behind an operator's opt-in.
	EnableDebug bool
	// MaxInFlight bounds concurrently served requests; excess load is shed
	// with 503 + Retry-After instead of queueing until collapse (default
	// 256; negative disables shedding).
	MaxInFlight int
	// SubmitRatePerSec token-buckets fingerprint submissions per client IP;
	// the overflow is shed with 429 + Retry-After (default 50/s, burst 2×;
	// use a huge value to effectively disable).
	SubmitRatePerSec float64
	// RequestTimeout caps how long one request's handler may run; the
	// deadline rides on the request context (default 15s).
	RequestTimeout time.Duration
	// IdempotencyWindow caps how many submission responses one session
	// replays for retried idempotency keys (default 512 most recent keys).
	IdempotencyWindow int
	// Analytics, when set, receives every accepted submission batch off
	// the request critical path (bounded queue, see streaming.Engine) and
	// backs the /api/v1/analytics/* routes. Nil disables them; as with
	// Store, assign only a non-nil concrete value.
	Analytics Analytics
	// Trace, when set, turns on distributed tracing: every request gets a
	// span that joins the client's traceparent header (obs.Extract) or
	// starts a fresh trace, submission handling hangs ingest/store.append
	// child spans under it, and finished request spans are exported here.
	Trace obs.SpanExporter
	// Watch, when set, backs GET /api/v1/analytics/alerts and the
	// plain-text GET /debug/health measurement-health endpoint.
	Watch *watch.Monitor
	// Series, when set, backs the flight-recorder query routes
	// GET /api/v1/obs/query and GET /api/v1/obs/series. The caller owns the
	// store's lifecycle (Start/Close).
	Series *series.Store
	// RenderAudit, when set, backs GET /debug/render/divergence with the
	// shadow auditor's flight-record dump.
	RenderAudit *vectors.ShadowAuditor
	// Diag, when set, backs the diagnostic-bundle routes
	// GET/POST /api/v1/obs/bundles[/{id}]. Nil keeps the routes registered
	// answering the stable diag_disabled code.
	Diag *diag.Capturer
	// Runtime, when set, contributes the runtime/resources section
	// (goroutines, heap in-use, last GC pause) to GET /debug/health.
	Runtime *diag.Sampler
	// Verifier, when set, turns on the authentication surface: accepted
	// submissions are enrolled into it and POST /api/v1/verify answers
	// decisions from it. Nil keeps the routes registered but answering the
	// stable verify_disabled code. Concrete implementations: *verify.Engine
	// (single) and *shard.Verifiers (the claimed user pins the owning
	// shard, so decisions are identical either way). As with Store, assign
	// only a non-nil concrete value.
	Verifier Verifier
	// VerifySLO is the decision-latency objective: verifications slower
	// than this increment fpserver_verify_slow_total, which the watch
	// verify-latency error-budget rule burns against (default 100ms).
	VerifySLO time.Duration
}

// Verifier is the authentication decision plane behind POST /api/v1/verify:
// a single verify.Engine or the sharded shard.Verifiers.
type Verifier interface {
	Enroll(recs []storage.Record)
	Verify(userID string, samples []verify.Sample) (verify.Decision, error)
	Stats() verify.StatsSnapshot
}

// Server is the collection backend. Create with New, mount via Handler.
type Server struct {
	cfg           Config
	limiter       *rateLimiter
	submitLimiter *rateLimiter
	inflight      chan struct{}
	met           *serverMetrics

	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	id        string
	userID    string
	userAgent string
	created   time.Time
	lastSeen  time.Time
	records   int
	// seen caches submission responses by idempotency key so a client
	// retrying a lost ack replays the original outcome instead of
	// duplicating records; seenOrder evicts oldest-first.
	seen      map[string]SubmitResponse
	seenOrder []string
}

// remember caches resp for key, evicting the oldest cached key beyond the
// window. Caller holds the server mutex.
func (s *session) remember(key string, resp SubmitResponse, window int) {
	if s.seen == nil {
		s.seen = make(map[string]SubmitResponse)
	}
	if _, dup := s.seen[key]; !dup {
		s.seenOrder = append(s.seenOrder, key)
		if len(s.seenOrder) > window {
			delete(s.seen, s.seenOrder[0])
			s.seenOrder = s.seenOrder[1:]
		}
	}
	s.seen[key] = resp
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("collectserver: Config.Store is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 30 * time.Minute
	}
	if cfg.MaxRecordsPerSession <= 0 {
		cfg.MaxRecordsPerSession = 10000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.SessionRatePerMin <= 0 {
		cfg.SessionRatePerMin = 30
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.SubmitRatePerSec <= 0 {
		cfg.SubmitRatePerSec = 50
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 15 * time.Second
	}
	if cfg.IdempotencyWindow <= 0 {
		cfg.IdempotencyWindow = 512
	}
	if cfg.VerifySLO == 0 {
		cfg.VerifySLO = 100 * time.Millisecond
	}
	srv := &Server{cfg: cfg, sessions: make(map[string]*session)}
	srv.limiter = newRateLimiter(cfg.SessionRatePerMin/60, cfg.SessionRatePerMin, cfg.Now)
	srv.submitLimiter = newRateLimiter(cfg.SubmitRatePerSec, 2*cfg.SubmitRatePerSec, cfg.Now)
	if cfg.MaxInFlight > 0 {
		srv.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	srv.met = newServerMetrics(cfg.Registry)
	return srv, nil
}

// Handler returns the server's HTTP routes, registered from the route
// table in routes.go — the same table GET /api/v1 serves as the catalog.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range routeTable() {
		h := rt.handler
		mux.HandleFunc(rt.Method+" "+rt.Path, func(w http.ResponseWriter, r *http.Request) {
			h(s, w, r)
		})
	}
	if s.cfg.EnableDebug {
		obs.RegisterDebug(mux)
	}
	return s.withMiddleware(mux)
}

// withMiddleware adds overload shedding, request deadlines, panic
// recovery, body limits, metrics and logging. All accounting happens in
// the deferred block so a panicking handler still shows up in the latency
// histogram and counts as a 5xx.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				// Saturated: shed rather than queue. Retry-After keeps
				// well-behaved clients from hammering a drowning server.
				s.met.shed("overload")
				w.Header().Set("Retry-After", "1")
				respondError(rec, http.StatusServiceUnavailable, CodeOverloaded, "server overloaded, retry later")
				s.met.request(routeLabel(r.URL.Path), rec.code, time.Since(start), r.ContentLength)
				return
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		var span *obs.Span
		if s.cfg.Trace != nil {
			// Join the caller's distributed trace when the request carries a
			// valid traceparent; otherwise this request roots a fresh one.
			if tc, ok := obs.Extract(r.Header); ok {
				span = obs.NewRemoteChild("http.request", tc)
			} else {
				span = obs.NewTrace("http.request")
			}
			span.SetAttr("method", r.Method)
			span.SetAttr("route", routeLabel(r.URL.Path))
			ctx = obs.ContextWithSpan(ctx, span)
		}
		r = r.WithContext(ctx)
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Inc()
				rec.code = http.StatusInternalServerError
				if !rec.wrote {
					respondError(rec, http.StatusInternalServerError, CodeInternal, "internal error")
				}
				if s.cfg.Logger != nil {
					s.cfg.Logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
				}
			}
			s.met.request(routeLabel(r.URL.Path), rec.code, time.Since(start), r.ContentLength)
			if span != nil {
				span.SetAttr("status", rec.code)
				span.End()
				s.cfg.Trace.ExportSpan(span)
			}
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("%s %s %d (%s)", r.Method, r.URL.Path, rec.code,
					time.Since(start).Round(time.Microsecond))
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, 4<<20)
		next.ServeHTTP(rec, r)
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StudyInfo is the consent-gate metadata served to participants.
type StudyInfo struct {
	Name        string   `json:"name"`
	Consent     string   `json:"consent"`
	Vectors     []string `json:"vectors"`
	Iterations  int      `json:"iterations"`
	ContactNote string   `json:"contact_note"`
}

func (s *Server) handleStudy(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, len(vectors.All))
	for i, v := range vectors.All {
		names[i] = v.String()
	}
	respondJSON(w, http.StatusOK, StudyInfo{
		Name: "Web Audio Fingerprinting Measurement Study",
		Consent: "This study extracts browser fingerprints (Web Audio, Canvas, " +
			"Font, User-Agent) from your browser. No other information is " +
			"collected. Participation begins only after you click consent.",
		Vectors:     names,
		Iterations:  30,
		ContactNote: "Contact the study operators to have your data removed.",
	})
}

// NewSessionRequest starts a collection session; the POST itself is the
// consent click.
type NewSessionRequest struct {
	UserID    string `json:"user_id"`
	UserAgent string `json:"user_agent"`
	Consent   bool   `json:"consent"`
}

// NewSessionResponse carries the issued session token.
type NewSessionResponse struct {
	SessionID string `json:"session_id"`
	Token     string `json:"token"`
}

func (s *Server) handleNewSession(w http.ResponseWriter, r *http.Request) {
	if !s.limiter.allow(clientIP(r)) {
		s.met.rateLimited.Inc()
		respondError(w, http.StatusTooManyRequests, CodeRateLimited, "session creation rate limit exceeded")
		return
	}
	var req NewSessionRequest
	if err := decodeJSON(r, &req); err != nil {
		respondError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if !req.Consent {
		respondError(w, http.StatusForbidden, CodeConsentRequired, "consent is required before collection")
		return
	}
	if req.UserID == "" {
		respondError(w, http.StatusBadRequest, CodeBadRequest, "user_id is required")
		return
	}
	tok, err := newToken()
	if err != nil {
		respondError(w, http.StatusInternalServerError, CodeInternal, "token generation failed")
		return
	}
	now := s.cfg.Now()
	sess := &session{
		id: "s-" + tok[:12], userID: req.UserID, userAgent: req.UserAgent,
		created: now, lastSeen: now,
	}
	s.mu.Lock()
	s.gcLocked(now)
	s.sessions[tok] = sess
	s.mu.Unlock()
	s.met.sessionsCreated.Inc()
	respondJSON(w, http.StatusCreated, NewSessionResponse{SessionID: sess.id, Token: tok})
}

// SubmitRequest is one fingerprint batch. IdempotencyKey, when set, makes
// retried submissions safe: a batch resubmitted under a key the session has
// already accepted replays the original acknowledgment instead of storing
// duplicate records.
type SubmitRequest struct {
	Token          string     `json:"token"`
	Records        []FPRecord `json:"records"`
	IdempotencyKey string     `json:"idempotency_key,omitempty"`
}

// FPRecord is the wire form of one elementary fingerprint.
type FPRecord struct {
	Vector    string            `json:"vector"`
	Iteration int               `json:"iteration"`
	Hash      string            `json:"hash"`
	Sum       float64           `json:"sum,omitempty"`
	Surfaces  map[string]string `json:"surfaces,omitempty"`
}

// SubmitResponse acknowledges an accepted batch.
type SubmitResponse struct {
	Accepted int `json:"accepted"`
	Total    int `json:"total_for_session"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.submitLimiter.allow(clientIP(r)) {
		s.met.shed("rate")
		w.Header().Set("Retry-After", "1")
		respondError(w, http.StatusTooManyRequests, CodeRateLimited, "submission rate limit exceeded")
		return
	}
	// Hang the ingest stage under the request span (nil-safe: untraced
	// servers carry no span and every span call below no-ops). The ingest
	// span becomes the context's active span so the streaming engine's
	// eventual apply joins this trace across the queue hand-off.
	ctx := r.Context()
	ingest := obs.SpanFromContext(ctx).StartChild("ingest")
	defer ingest.End()
	if ingest != nil {
		ctx = obs.ContextWithSpan(ctx, ingest)
	}
	var req SubmitRequest
	if err := decodeJSON(r, &req); err != nil {
		respondError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if len(req.Records) == 0 {
		respondError(w, http.StatusBadRequest, CodeBadRequest, "empty batch")
		return
	}
	if len(req.Records) > s.cfg.MaxBatch {
		respondError(w, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Records), s.cfg.MaxBatch))
		return
	}

	now := s.cfg.Now()
	s.mu.Lock()
	sess, ok := s.sessions[req.Token]
	if ok && now.Sub(sess.lastSeen) > s.cfg.SessionTTL {
		delete(s.sessions, req.Token)
		ok = false
	}
	if !ok {
		s.mu.Unlock()
		respondError(w, http.StatusUnauthorized, CodeUnauthorized, "unknown or expired session token")
		return
	}
	if req.IdempotencyKey != "" {
		if cached, dup := sess.seen[req.IdempotencyKey]; dup {
			sess.lastSeen = now
			s.mu.Unlock()
			s.met.idempotentReplays.Inc()
			// A replayed key never reaches the store — and never reaches
			// the analytics engine either, matching exactly-once ingestion.
			respondJSON(w, http.StatusAccepted, cached)
			return
		}
	}
	if sess.records+len(req.Records) > s.cfg.MaxRecordsPerSession {
		s.mu.Unlock()
		respondError(w, http.StatusTooManyRequests, CodeQuotaExceeded, "session record quota exceeded")
		return
	}
	sess.lastSeen = now
	sess.records += len(req.Records)
	userID, sessionID, ua := sess.userID, sess.id, sess.userAgent
	total := sess.records
	s.mu.Unlock()

	recs := make([]storage.Record, 0, len(req.Records))
	for _, fr := range req.Records {
		if err := validateFPRecord(fr, s.cfg.MaxIterations); err != nil {
			respondError(w, http.StatusUnprocessableEntity, CodeInvalidRecord, err.Error())
			return
		}
		recs = append(recs, storage.Record{
			SessionID: sessionID, UserID: userID, Vector: fr.Vector,
			Iteration: fr.Iteration, Hash: fr.Hash, Sum: fr.Sum,
			UserAgent: ua, Surfaces: fr.Surfaces, ReceivedAt: now.UTC(),
		})
	}
	appendSpan := ingest.StartChild("store.append")
	err := s.cfg.Store.Append(recs...)
	appendSpan.SetAttr("records", len(recs))
	appendSpan.End()
	if err != nil {
		respondError(w, http.StatusInternalServerError, CodeStorageFailure, "storage failure")
		return
	}
	if s.cfg.Analytics != nil {
		// Off the critical path: hand the batch to the engine's bounded
		// queue. The context carries the ingest span, so a trace-configured
		// engine stitches its async apply onto this request's trace.
		s.cfg.Analytics.EnqueueContext(ctx, recs)
	}
	if s.cfg.Verifier != nil {
		// Enrollment keeps the verification history in lockstep with the
		// store: every accepted audio-vector record extends the user's
		// collated history (the engine skips auxiliary surfaces itself).
		// Neither consumer mutates recs, so sharing the slice is safe.
		s.cfg.Verifier.Enroll(recs)
	}
	ingest.SetAttr("accepted", len(recs))
	resp := SubmitResponse{Accepted: len(recs), Total: total}
	if req.IdempotencyKey != "" {
		// Cache only after the append succeeded: a failed attempt must stay
		// retryable under the same key. The session may have expired while
		// we wrote; then there is nothing to remember.
		s.mu.Lock()
		if sess2, still := s.sessions[req.Token]; still {
			sess2.remember(req.IdempotencyKey, resp, s.cfg.IdempotencyWindow)
		}
		s.mu.Unlock()
	}
	s.met.recordsAccepted.Add(int64(len(recs)))
	respondJSON(w, http.StatusAccepted, resp)
}

func validateFPRecord(fr FPRecord, maxIter int) error {
	if _, err := vectors.ParseID(fr.Vector); err != nil && fr.Vector != "MathJS" &&
		fr.Vector != "Canvas" && fr.Vector != "Fonts" && fr.Vector != "UserAgent" {
		return fmt.Errorf("unknown vector %q", fr.Vector)
	}
	if fr.Iteration < 0 || fr.Iteration >= maxIter {
		return fmt.Errorf("iteration %d out of range [0,%d)", fr.Iteration, maxIter)
	}
	return validateHash(fr.Hash)
}

// validateHash enforces the wire hash format shared by submission and
// verification: nonempty lowercase hex, at most 128 characters.
func validateHash(hash string) error {
	if len(hash) == 0 || len(hash) > 128 {
		return fmt.Errorf("hash length %d out of range", len(hash))
	}
	for _, c := range hash {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return fmt.Errorf("hash is not lowercase hex")
		}
	}
	return nil
}

// StatsResponse is the payload of GET /api/v1/stats. With ?vector=NAME the
// counts cover only that vector's records and Vector echoes the filter.
type StatsResponse struct {
	Records   int            `json:"records"`
	Users     int            `json:"users"`
	PerVector map[string]int `json:"per_vector"`
	Vector    string         `json:"vector,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("vector")
	recs, err := s.cfg.Store.All()
	if err != nil {
		respondError(w, http.StatusInternalServerError, CodeStorageFailure, "storage failure")
		return
	}
	perVector := map[string]int{}
	users := map[string]struct{}{}
	for _, rec := range recs {
		if filter != "" && rec.Vector != filter {
			continue
		}
		perVector[rec.Vector]++
		users[rec.UserID] = struct{}{}
	}
	total := 0
	for _, n := range perVector {
		total += n
	}
	if filter != "" && total == 0 {
		// Distinguish "no records yet" from "you asked for a vector that
		// can never exist" — the latter is a client bug worth a 400.
		if !knownVectorName(filter) {
			respondError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("unknown vector %q", filter))
			return
		}
	}
	respondJSON(w, http.StatusOK, StatsResponse{
		Records:   total,
		Users:     len(users),
		PerVector: perVector,
		Vector:    filter,
	})
}

// knownVectorName reports whether name is one of the seven audio vectors or
// an auxiliary surface accepted by validateFPRecord.
func knownVectorName(name string) bool {
	if _, err := vectors.ParseID(name); err == nil {
		return true
	}
	switch name {
	case "MathJS", "Canvas", "Fonts", "UserAgent":
		return true
	}
	return false
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if s.cfg.AdminToken == "" {
		respondError(w, http.StatusForbidden, CodeExportDisabled, "export disabled")
		return
	}
	got := r.Header.Get("Authorization")
	want := "Bearer " + s.cfg.AdminToken
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
		respondError(w, http.StatusUnauthorized, CodeUnauthorized, "bad admin token")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if _, err := s.cfg.Store.WriteTo(w); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Printf("export: %v", err)
	}
}

// gcLocked drops expired sessions; caller holds s.mu.
func (s *Server) gcLocked(now time.Time) {
	for tok, sess := range s.sessions {
		if now.Sub(sess.lastSeen) > s.cfg.SessionTTL {
			delete(s.sessions, tok)
		}
	}
}

// ActiveSessions reports the live session count (monitoring).
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func newToken() (string, error) {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

func decodeJSON(r *http.Request, dst any) error {
	if ct := r.Header.Get("Content-Type"); ct != "" && !strings.HasPrefix(ct, "application/json") {
		return fmt.Errorf("unsupported content type %q", ct)
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %v", err)
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// writeJSON serves the unversioned endpoints (/healthz) that predate the
// v1 envelope. Everything under /api/v1 goes through respondJSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
