package collectserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/streaming"
)

// TestV1EnvelopeContract walks every /api/v1 route — success and failure
// paths — and asserts the two halves of the contract: the X-API-Version
// header is present, and the body is exactly one of {"data":...} or
// {"error":{"code","message"}} with a non-empty stable code.
func TestV1EnvelopeContract(t *testing.T) {
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	f := newFixture(t, func(c *Config) { c.Analytics = eng })
	tok := f.startSession(t, "u1")

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	checkEnvelope := func(name string, resp *http.Response, body []byte, wantErr bool) {
		t.Helper()
		if v := resp.Header.Get("X-API-Version"); v != APIVersion {
			t.Errorf("%s: X-API-Version = %q, want %q", name, v, APIVersion)
		}
		var env Envelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: body is not an envelope: %v (%s)", name, err, body)
			return
		}
		if wantErr {
			if env.Error == nil || env.Error.Code == "" {
				t.Errorf("%s: want error envelope with code, got %s", name, body)
			}
			if env.Data != nil {
				t.Errorf("%s: error response also carries data: %s", name, body)
			}
		} else {
			if env.Data == nil {
				t.Errorf("%s: want data envelope, got %s", name, body)
			}
			if env.Error != nil {
				t.Errorf("%s: success response also carries error: %s", name, body)
			}
		}
	}

	// Success paths.
	resp, body := get("/api/v1/study")
	checkEnvelope("study", resp, body, false)

	resp, body = f.post(t, "/api/v1/fingerprints",
		SubmitRequest{Token: tok, Records: []FPRecord{validRecord(0), {Vector: "FFT", Iteration: 0, Hash: "cafe01"}}})
	checkEnvelope("fingerprints", resp, body, false)

	resp, body = get("/api/v1/stats")
	checkEnvelope("stats", resp, body, false)

	for _, route := range []string{"entropy", "clusters", "stability", "ami", "status"} {
		resp, body = get("/api/v1/analytics/" + route)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("analytics/%s: %d %s", route, resp.StatusCode, body)
		}
		checkEnvelope("analytics/"+route, resp, body, false)
	}

	// Failure paths, one per stable code reachable over HTTP here.
	resp, body = f.post(t, "/api/v1/sessions", NewSessionRequest{UserID: "u2", Consent: false})
	checkEnvelope("consent", resp, body, true)

	resp, body = f.post(t, "/api/v1/fingerprints",
		SubmitRequest{Token: "nope", Records: []FPRecord{validRecord(0)}})
	checkEnvelope("bad token", resp, body, true)

	resp, body = get("/api/v1/export")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("export without token: %d", resp.StatusCode)
	}
	checkEnvelope("export", resp, body, true)
}

// TestSubmitFeedsAnalytics checks the serving-path wiring: records accepted
// by POST /api/v1/fingerprints reach the streaming engine, idempotent
// replays do not double-count, and GET /api/v1/analytics/* reflects them.
func TestSubmitFeedsAnalytics(t *testing.T) {
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	f := newFixture(t, func(c *Config) { c.Analytics = eng })
	tok := f.startSession(t, "u1")

	req := SubmitRequest{Token: tok, IdempotencyKey: "k1", Records: []FPRecord{
		validRecord(0), {Vector: "FFT", Iteration: 0, Hash: "cafe01"},
	}}
	if resp, body := f.post(t, "/api/v1/fingerprints", req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	// Replay with the same idempotency key: cached response, no re-ingest.
	if resp, body := f.post(t, "/api/v1/fingerprints", req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("replay: %d %s", resp.StatusCode, body)
	}
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(f.ts.URL + "/api/v1/analytics/status")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	var status streaming.StatusSnapshot
	decodeData(t, buf.Bytes(), &status)
	if status.Records != 2 || status.Users != 1 {
		t.Errorf("analytics status = %+v, want 2 records from 1 user", status)
	}

	resp, err = http.Get(f.ts.URL + "/api/v1/analytics/entropy")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	var ent streaming.EntropySnapshot
	decodeData(t, buf.Bytes(), &ent)
	if ent.Users != 1 || len(ent.Rows) == 0 {
		t.Errorf("entropy snapshot = %+v", ent)
	}
}

// TestAnalyticsDisabled pins the stable code clients use to distinguish
// "server runs without -analytics" from a routing 404.
func TestAnalyticsDisabled(t *testing.T) {
	f := newFixture(t, nil)
	resp, err := http.Get(f.ts.URL + "/api/v1/analytics/entropy")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disabled analytics: %d %s", resp.StatusCode, buf.Bytes())
	}
	var env Envelope
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil || env.Error == nil {
		t.Fatalf("disabled analytics body = %s", buf.Bytes())
	}
	if env.Error.Code != CodeAnalyticsDisabled {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeAnalyticsDisabled)
	}
}
