package collectserver

import (
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// rateLimiter is a token-bucket limiter keyed by client IP, protecting the
// session-creation endpoint from churn abuse (a public study site's
// standard hardening).
type rateLimiter struct {
	mu       sync.Mutex
	buckets  map[string]*bucket
	rate     float64 // tokens per second
	burst    float64
	now      func() time.Time
	lastScan time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(ratePerSec, burst float64, now func() time.Time) *rateLimiter {
	return &rateLimiter{
		buckets: make(map[string]*bucket),
		rate:    ratePerSec,
		burst:   burst,
		now:     now,
	}
}

// allow reports whether the key may proceed, consuming one token.
func (rl *rateLimiter) allow(key string) bool {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	// Periodically drop idle buckets so memory stays bounded.
	if now.Sub(rl.lastScan) > time.Minute {
		for k, b := range rl.buckets {
			if now.Sub(b.last) > 10*time.Minute {
				delete(rl.buckets, k)
			}
		}
		rl.lastScan = now
	}
	b, ok := rl.buckets[key]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientIP extracts the remote IP (ignoring the port).
func clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// serverMetrics holds the server's instruments, registered on the
// configured obs.Registry and exposed at /metrics.
type serverMetrics struct {
	reg               *obs.Registry
	recordsAccepted   *obs.Counter
	sessionsCreated   *obs.Counter
	rateLimited       *obs.Counter
	panics            *obs.Counter
	idempotentReplays *obs.Counter
	activeSessions    *obs.Gauge
	storeRecords      *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		recordsAccepted: reg.Counter("fpserver_records_accepted_total",
			"Fingerprint records accepted into the store.", nil),
		sessionsCreated: reg.Counter("fpserver_sessions_created_total",
			"Collection sessions issued after consent.", nil),
		rateLimited: reg.Counter("fpserver_rate_limited_total",
			"Session creations rejected by the per-IP rate limiter.", nil),
		panics: reg.Counter("fpserver_panics_total",
			"Handler panics recovered by the middleware.", nil),
		idempotentReplays: reg.Counter("fpserver_idempotent_replays_total",
			"Retried submissions answered from the idempotency cache instead of re-storing.", nil),
		activeSessions: reg.Gauge("fpserver_active_sessions",
			"Live (unexpired) collection sessions.", nil),
		storeRecords: reg.Gauge("fpserver_store_records",
			"Records currently held by the backing store.", nil),
	}
}

// verifyDecision records one verification decision's serving latency
// against the SLO: the total and the slow-exceeding-slo counters feed the
// watch verify-latency error-budget rule.
func (m *serverMetrics) verifyDecision(dur, slo time.Duration) {
	m.reg.Counter("fpserver_verify_requests_total",
		"Verification decisions served.", nil).Inc()
	if dur > slo {
		m.reg.Counter("fpserver_verify_slow_total",
			"Verification decisions slower than the configured SLO.", nil).Inc()
	}
	m.reg.Histogram("fpserver_verify_duration_seconds",
		"Verification decision latency.", obs.LatencyBuckets(), nil).Observe(dur.Seconds())
}

// shed counts one load-shed request by reason ("overload" = in-flight cap,
// "rate" = per-IP submission token bucket).
func (m *serverMetrics) shed(reason string) {
	m.reg.Counter("fpserver_shed_total",
		"Requests shed before handling, by reason.",
		obs.Labels{"reason": reason}).Inc()
}

// request records one served request: route/class counter, per-route
// latency, and per-route request body size.
func (m *serverMetrics) request(route string, code int, dur time.Duration, size int64) {
	class := strconv.Itoa(code/100) + "xx"
	m.reg.Counter("fpserver_requests_total",
		"HTTP requests served, by route and status class.",
		obs.Labels{"route": route, "class": class}).Inc()
	m.reg.Histogram("fpserver_request_duration_seconds",
		"Request latency by route.", obs.LatencyBuckets(),
		obs.Labels{"route": route}).Observe(dur.Seconds())
	if size >= 0 {
		m.reg.Histogram("fpserver_request_size_bytes",
			"Request body size by route.", obs.SizeBuckets(),
			obs.Labels{"route": route}).Observe(float64(size))
	}
}

// routeLabel maps a request path to a bounded-cardinality route label so
// arbitrary client paths cannot mint unbounded metric series. The label
// set is derived from the route table (routes.go), so newly registered
// routes label themselves.
func routeLabel(path string) string {
	if _, ok := knownRoutePaths[path]; ok {
		return path
	}
	for _, wr := range wildcardRoutes {
		if strings.HasPrefix(path, wr[0]) {
			return wr[1]
		}
	}
	return "other"
}

// statusRecorder captures the response code and body size for metrics. A
// handler that writes without calling WriteHeader gets the implicit 200.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.code = http.StatusOK
		r.wrote = true
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying writer so streaming handlers
// (e.g. the NDJSON export) keep working behind the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics refreshes the live gauges and renders the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.activeSessions.Set(float64(s.ActiveSessions()))
	s.met.storeRecords.Set(float64(s.cfg.Store.Count()))
	s.met.reg.Handler().ServeHTTP(w, r)
}
