package collectserver

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// rateLimiter is a token-bucket limiter keyed by client IP, protecting the
// session-creation endpoint from churn abuse (a public study site's
// standard hardening).
type rateLimiter struct {
	mu       sync.Mutex
	buckets  map[string]*bucket
	rate     float64 // tokens per second
	burst    float64
	now      func() time.Time
	lastScan time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(ratePerSec, burst float64, now func() time.Time) *rateLimiter {
	return &rateLimiter{
		buckets: make(map[string]*bucket),
		rate:    ratePerSec,
		burst:   burst,
		now:     now,
	}
}

// allow reports whether the key may proceed, consuming one token.
func (rl *rateLimiter) allow(key string) bool {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	// Periodically drop idle buckets so memory stays bounded.
	if now.Sub(rl.lastScan) > time.Minute {
		for k, b := range rl.buckets {
			if now.Sub(b.last) > 10*time.Minute {
				delete(rl.buckets, k)
			}
		}
		rl.lastScan = now
	}
	b, ok := rl.buckets[key]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientIP extracts the remote IP (ignoring the port).
func clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// metrics collects the counters exposed at /metrics in the Prometheus text
// exposition format.
type metrics struct {
	requestsTotal   atomic.Int64
	requests2xx     atomic.Int64
	requests4xx     atomic.Int64
	requests5xx     atomic.Int64
	recordsAccepted atomic.Int64
	sessionsCreated atomic.Int64
	rateLimited     atomic.Int64
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// handleMetrics renders the counters plus live gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m := &s.metrics
	fmt.Fprintf(w, "# TYPE fpserver_requests_total counter\n")
	fmt.Fprintf(w, "fpserver_requests_total %d\n", m.requestsTotal.Load())
	fmt.Fprintf(w, "# TYPE fpserver_requests_by_class counter\n")
	fmt.Fprintf(w, "fpserver_requests_by_class{class=\"2xx\"} %d\n", m.requests2xx.Load())
	fmt.Fprintf(w, "fpserver_requests_by_class{class=\"4xx\"} %d\n", m.requests4xx.Load())
	fmt.Fprintf(w, "fpserver_requests_by_class{class=\"5xx\"} %d\n", m.requests5xx.Load())
	fmt.Fprintf(w, "# TYPE fpserver_records_accepted_total counter\n")
	fmt.Fprintf(w, "fpserver_records_accepted_total %d\n", m.recordsAccepted.Load())
	fmt.Fprintf(w, "# TYPE fpserver_sessions_created_total counter\n")
	fmt.Fprintf(w, "fpserver_sessions_created_total %d\n", m.sessionsCreated.Load())
	fmt.Fprintf(w, "# TYPE fpserver_rate_limited_total counter\n")
	fmt.Fprintf(w, "fpserver_rate_limited_total %d\n", m.rateLimited.Load())
	fmt.Fprintf(w, "# TYPE fpserver_active_sessions gauge\n")
	fmt.Fprintf(w, "fpserver_active_sessions %d\n", s.ActiveSessions())
	fmt.Fprintf(w, "# TYPE fpserver_store_records gauge\n")
	fmt.Fprintf(w, "fpserver_store_records %d\n", s.cfg.Store.Count())
}
