package collectserver

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/obs/series"
)

func newDiagFixture(t *testing.T) (*fixture, *diag.Capturer) {
	t.Helper()
	reg := obs.NewRegistry()
	capt, err := diag.NewCapturer(diag.CaptureConfig{
		Dir:      t.TempDir(),
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, func(cfg *Config) {
		cfg.Registry = reg
		cfg.Diag = capt
	})
	return f, capt
}

func TestDiagRoutesDisabledWithoutCapturer(t *testing.T) {
	f := newFixture(t, nil)
	resp, body := obsGet(t, f, "/api/v1/obs/bundles")
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, body) != CodeDiagDisabled {
		t.Fatalf("list without capturer: %d %s", resp.StatusCode, body)
	}
	resp, body = obsGet(t, f, "/api/v1/obs/bundles/whatever")
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, body) != CodeDiagDisabled {
		t.Fatalf("fetch without capturer: %d %s", resp.StatusCode, body)
	}
	presp, err := http.Post(f.ts.URL+"/api/v1/obs/bundles", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST without capturer: %d", presp.StatusCode)
	}
}

func TestDiagCaptureListFetchRoundTrip(t *testing.T) {
	f, _ := newDiagFixture(t)

	// Empty ring lists as an empty array, not null.
	resp, body := obsGet(t, f, "/api/v1/obs/bundles")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty list: %d %s", resp.StatusCode, body)
	}
	var list diagListResponse
	decodeData(t, body, &list)
	if list.Bundles == nil || len(list.Bundles) != 0 {
		t.Fatalf("empty ring list = %+v", list)
	}

	// On-demand capture.
	presp, err := http.Post(f.ts.URL+"/api/v1/obs/bundles", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	pbody := readBody(t, presp)
	if presp.StatusCode != http.StatusCreated {
		t.Fatalf("POST capture: %d %s", presp.StatusCode, pbody)
	}
	var man diag.Manifest
	decodeData(t, pbody, &man)
	if man.ID == "" || man.Reason != diag.ReasonManual || len(man.Files) == 0 {
		t.Fatalf("capture manifest = %+v", man)
	}

	// List now shows it.
	resp, body = obsGet(t, f, "/api/v1/obs/bundles")
	decodeData(t, body, &list)
	if len(list.Bundles) != 1 || list.Bundles[0].ID != man.ID {
		t.Fatalf("list after capture = %+v", list)
	}

	// Fetch the manifest by ID.
	resp, body = obsGet(t, f, "/api/v1/obs/bundles/"+man.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch manifest: %d %s", resp.StatusCode, body)
	}
	var got diag.Manifest
	decodeData(t, body, &got)
	if got.ID != man.ID {
		t.Fatalf("fetched manifest ID = %q, want %q", got.ID, man.ID)
	}

	// Fetch a raw file: goroutines.txt must mention this test's stack.
	resp, body = obsGet(t, f, "/api/v1/obs/bundles/"+man.ID+"?file="+diag.FileGoroutines)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch file: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("goroutines dump does not look like one: %.80s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("goroutines content type = %q", ct)
	}

	// A file outside the manifest's list is rejected, not served.
	resp, body = obsGet(t, f, "/api/v1/obs/bundles/"+man.ID+"?file=../../../etc/passwd")
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != CodeBadRequest {
		t.Fatalf("traversal file fetch: %d %s", resp.StatusCode, body)
	}

	// Unknown bundle IDs answer the stable code.
	resp, body = obsGet(t, f, "/api/v1/obs/bundles/20000101T000000Z-9999-nope")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != CodeUnknownBundle {
		t.Fatalf("unknown bundle: %d %s", resp.StatusCode, body)
	}
	// A traversal bundle ID never reaches the handler (the HTTP layer
	// cleans the path) and diag.ValidBundleID rejects it at the ring layer;
	// either way the response is a 404, never a file.
	resp, _ = obsGet(t, f, "/api/v1/obs/bundles/..")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traversal bundle id: %d", resp.StatusCode)
	}
}

func TestDebugHealthRuntimeSection(t *testing.T) {
	reg := obs.NewRegistry()
	sampler := diag.NewSampler(diag.SamplerConfig{Registry: reg})
	defer sampler.Close()
	f := newFixture(t, func(cfg *Config) {
		cfg.Registry = reg
		cfg.Runtime = sampler
	})
	resp, body := obsGet(t, f, "/debug/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"status: watch disabled",
		"runtime goroutines: ",
		"runtime heap_inuse_bytes: ",
		"runtime last_gc_pause_seconds: ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("health output missing %q:\n%s", want, text)
		}
	}
}

// TestObsQueryErrorCodePins pins the stable error codes on the
// /api/v1/obs/query failure paths — clients branch on these, so a code
// change is a contract break.
func TestObsQueryErrorCodePins(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("pin_total", "", nil)
	reg.Gauge("pin_gauge", "", nil).Set(4)
	var f *fixture
	st := series.New(series.Config{
		Registry: reg,
		Capacity: 8,
		Now:      func() time.Time { return f.now },
	})
	defer st.Close()
	f = newFixture(t, func(cfg *Config) {
		cfg.Registry = reg
		cfg.Series = st
	})
	st.Tick()

	// Unknown metric → 404 unknown_metric.
	resp, body := obsGet(t, f, "/api/v1/obs/query?metric=never_snapshotted")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != CodeUnknownMetric {
		t.Errorf("unknown metric: %d %s", resp.StatusCode, body)
	}

	// Malformed range → 400 bad_request (both unparsable and non-positive).
	for _, rng := range []string{"bogus", "-5m", "0s"} {
		resp, body = obsGet(t, f, "/api/v1/obs/query?metric=pin_total&range="+rng)
		if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != CodeBadRequest {
			t.Errorf("range=%q: %d %s", rng, resp.StatusCode, body)
		}
	}

	// Malformed delta → 400 bad_request.
	resp, body = obsGet(t, f, "/api/v1/obs/query?metric=pin_total&delta=maybe")
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != CodeBadRequest {
		t.Errorf("delta=maybe: %d %s", resp.StatusCode, body)
	}

	// Delta on a gauge is not an error: the store answers the raw series
	// with the delta flag off (deltas are meaningless for gauges).
	resp, body = obsGet(t, f, "/api/v1/obs/query?metric=pin_gauge&delta=true")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta on gauge: %d %s", resp.StatusCode, body)
	}
	var res series.QueryResult
	decodeData(t, body, &res)
	if res.Type != "gauge" || res.Delta {
		t.Errorf("delta-on-gauge payload = type %q delta %v, want gauge/false", res.Type, res.Delta)
	}
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var body []byte
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return body
}
