package collectserver

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/series"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

func obsGet(t *testing.T, f *fixture, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(f.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body []byte
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp, body
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("want error envelope, got %s", body)
	}
	return env.Error.Code
}

func TestObsRoutesDisabledWithoutStore(t *testing.T) {
	f := newFixture(t, nil)
	resp, body := obsGet(t, f, "/api/v1/obs/query?metric=x")
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, body) != CodeSeriesDisabled {
		t.Fatalf("query without store: %d %s", resp.StatusCode, body)
	}
	resp, body = obsGet(t, f, "/api/v1/obs/series")
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, body) != CodeSeriesDisabled {
		t.Fatalf("catalog without store: %d %s", resp.StatusCode, body)
	}
	resp, _ = obsGet(t, f, "/debug/render/divergence")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("divergence without auditor: %d", resp.StatusCode)
	}
}

func TestObsQueryAndCatalog(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("demo_total", "", obs.Labels{"k": "v"})
	var f *fixture
	st := series.New(series.Config{
		Registry: reg,
		Capacity: 16,
		Now:      func() time.Time { return f.now },
	})
	defer st.Close()
	f = newFixture(t, func(cfg *Config) {
		cfg.Registry = reg
		cfg.Series = st
	})

	for i := 0; i < 3; i++ {
		c.Add(5)
		f.now = f.now.Add(10 * time.Second)
		st.Tick()
	}

	// Full history.
	resp, body := obsGet(t, f, "/api/v1/obs/query?metric=demo_total")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var res series.QueryResult
	decodeData(t, body, &res)
	if res.Metric != "demo_total" || res.Type != "counter" || len(res.Series) != 1 {
		t.Fatalf("payload = %+v", res)
	}
	if got := len(res.Series[0].Points); got != 3 {
		t.Fatalf("points = %d, want 3", got)
	}
	if res.Series[0].Labels["k"] != "v" {
		t.Fatalf("labels = %v", res.Series[0].Labels)
	}

	// Delta + range: the trailing 25s covers the last 2 points; deltas drop
	// the first of the retained ring, leaving per-tick increases of 5.
	resp, body = obsGet(t, f, "/api/v1/obs/query?metric=demo_total&delta=true&range=25s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta query: %d %s", resp.StatusCode, body)
	}
	decodeData(t, body, &res)
	if !res.Delta {
		t.Fatal("delta flag not set")
	}
	for _, p := range res.Series[0].Points {
		if p.V != 5 {
			t.Fatalf("delta points = %+v", res.Series[0].Points)
		}
	}

	// Catalog.
	resp, body = obsGet(t, f, "/api/v1/obs/series")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog: %d %s", resp.StatusCode, body)
	}
	var cat struct {
		IntervalSeconds float64               `json:"interval_seconds"`
		Metrics         []series.CatalogEntry `json:"metrics"`
	}
	decodeData(t, body, &cat)
	if cat.IntervalSeconds <= 0 || len(cat.Metrics) == 0 {
		t.Fatalf("catalog payload = %+v", cat)
	}

	// Error paths: missing metric, bad range, unknown metric.
	resp, body = obsGet(t, f, "/api/v1/obs/query")
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != CodeBadRequest {
		t.Fatalf("missing metric: %d %s", resp.StatusCode, body)
	}
	resp, body = obsGet(t, f, "/api/v1/obs/query?metric=demo_total&range=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad range: %d %s", resp.StatusCode, body)
	}
	resp, body = obsGet(t, f, "/api/v1/obs/query?metric=never_seen")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != CodeUnknownMetric {
		t.Fatalf("unknown metric: %d %s", resp.StatusCode, body)
	}
}

func TestRenderDivergenceRoute(t *testing.T) {
	webaudio.SetBlockFault("compressor", 7, 1<<17)
	defer webaudio.SetBlockFault("", 0, 0)

	aud := vectors.NewShadowAuditor(vectors.ShadowConfig{
		Every: 1, Registry: obs.NewRegistry(),
	})
	r := vectors.NewRunner(webaudio.DefaultTraits(), 44100)
	aud.Audit("stack-1", r, vectors.DC, 0)

	f := newFixture(t, func(cfg *Config) { cfg.RenderAudit = aud })
	resp, body := obsGet(t, f, "/debug/render/divergence")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("divergence dump: %d %s", resp.StatusCode, body)
	}
	var sum vectors.ShadowSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("not a summary: %v (%s)", err, body)
	}
	if sum.Divergences != 1 || len(sum.Records) != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if op := sum.Records[0].Divergence.Op; op != "compressor" {
		t.Fatalf("offending op over HTTP = %q", op)
	}
}
