package collectserver

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSessionRateLimit(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.SessionRatePerMin = 3 })
	ok, limited := 0, 0
	for i := 0; i < 10; i++ {
		resp, _ := f.post(t, "/api/v1/sessions",
			NewSessionRequest{UserID: "u", Consent: true})
		switch resp.StatusCode {
		case http.StatusCreated:
			ok++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if ok == 0 || limited == 0 {
		t.Fatalf("rate limiter inert: ok=%d limited=%d", ok, limited)
	}
	if ok > 4 { // burst 3 plus at most one refill
		t.Errorf("rate limiter too permissive: %d sessions", ok)
	}
	// Tokens refill as time advances.
	f.now = f.now.Add(time.Minute)
	resp, _ := f.post(t, "/api/v1/sessions", NewSessionRequest{UserID: "u", Consent: true})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("refill failed: %d", resp.StatusCode)
	}
}

func TestRateLimiterBucketGC(t *testing.T) {
	now := time.Unix(0, 0)
	rl := newRateLimiter(1, 2, func() time.Time { return now })
	for i := 0; i < 50; i++ {
		rl.allow(strings.Repeat("x", i%7) + "ip")
	}
	if len(rl.buckets) == 0 {
		t.Fatal("no buckets created")
	}
	now = now.Add(20 * time.Minute)
	rl.allow("fresh") // triggers the scan
	if len(rl.buckets) != 1 {
		t.Errorf("idle buckets not collected: %d remain", len(rl.buckets))
	}
}

func TestMetricsEndpoint(t *testing.T) {
	f := newFixture(t, nil)
	tok := f.startSession(t, "u1")
	f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: tok, Records: []FPRecord{validRecord(0), validRecord(1)}})
	f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: "bogus", Records: []FPRecord{validRecord(0)}})

	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"fpserver_requests_total",
		"fpserver_records_accepted_total 2",
		"fpserver_sessions_created_total 1",
		"fpserver_active_sessions 1",
		"fpserver_store_records 2",
		`fpserver_requests_by_class{class="4xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
}
