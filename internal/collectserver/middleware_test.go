package collectserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSessionRateLimit(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.SessionRatePerMin = 3 })
	ok, limited := 0, 0
	for i := 0; i < 10; i++ {
		resp, _ := f.post(t, "/api/v1/sessions",
			NewSessionRequest{UserID: "u", Consent: true})
		switch resp.StatusCode {
		case http.StatusCreated:
			ok++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if ok == 0 || limited == 0 {
		t.Fatalf("rate limiter inert: ok=%d limited=%d", ok, limited)
	}
	if ok > 4 { // burst 3 plus at most one refill
		t.Errorf("rate limiter too permissive: %d sessions", ok)
	}
	// Tokens refill as time advances.
	f.now = f.now.Add(time.Minute)
	resp, _ := f.post(t, "/api/v1/sessions", NewSessionRequest{UserID: "u", Consent: true})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("refill failed: %d", resp.StatusCode)
	}
}

func TestRateLimiterBucketGC(t *testing.T) {
	now := time.Unix(0, 0)
	rl := newRateLimiter(1, 2, func() time.Time { return now })
	for i := 0; i < 50; i++ {
		rl.allow(strings.Repeat("x", i%7) + "ip")
	}
	if len(rl.buckets) == 0 {
		t.Fatal("no buckets created")
	}
	now = now.Add(20 * time.Minute)
	rl.allow("fresh") // triggers the scan
	if len(rl.buckets) != 1 {
		t.Errorf("idle buckets not collected: %d remain", len(rl.buckets))
	}
}

// scrapeMetrics fetches /metrics and runs it through the strict exposition
// parser, so every test of the endpoint also validates the format.
func scrapeMetrics(t *testing.T, f *fixture) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return exp
}

// sampleValue returns the value of the sample whose labels are a superset
// of want, or -1 when absent.
func sampleValue(exp *obs.Exposition, name string, want map[string]string) float64 {
	for _, s := range exp.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return -1
}

func TestMetricsEndpoint(t *testing.T) {
	f := newFixture(t, nil)
	tok := f.startSession(t, "u1")
	f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: tok, Records: []FPRecord{validRecord(0), validRecord(1)}})
	f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: "bogus", Records: []FPRecord{validRecord(0)}})

	exp := scrapeMetrics(t, f)
	for _, tc := range []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"fpserver_records_accepted_total", nil, 2},
		{"fpserver_sessions_created_total", nil, 1},
		{"fpserver_active_sessions", nil, 1},
		{"fpserver_store_records", nil, 2},
		{"fpserver_requests_total", map[string]string{"route": "/api/v1/fingerprints", "class": "2xx"}, 1},
		{"fpserver_requests_total", map[string]string{"route": "/api/v1/fingerprints", "class": "4xx"}, 1},
		{"fpserver_requests_total", map[string]string{"route": "/api/v1/sessions", "class": "2xx"}, 1},
		{"fpserver_request_duration_seconds_count", map[string]string{"route": "/api/v1/fingerprints"}, 2},
		{"fpserver_request_size_bytes_count", map[string]string{"route": "/api/v1/fingerprints"}, 2},
	} {
		if got := sampleValue(exp, tc.name, tc.labels); got != tc.want {
			t.Errorf("%s%v = %v, want %v", tc.name, tc.labels, got, tc.want)
		}
	}
	if typ := exp.Types["fpserver_request_duration_seconds"]; typ != "histogram" {
		t.Errorf("duration metric type = %q, want histogram", typ)
	}
}

// TestMiddlewarePanicAccounting verifies a panicking handler is reported
// as a 5xx to the client AND in the metrics — the accounting must live in
// the deferred block, not after ServeHTTP.
func TestMiddlewarePanicAccounting(t *testing.T) {
	f := newFixture(t, nil)
	h := f.srv.withMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/api/v1/stats", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("panicked handler returned %d, want 500", rr.Code)
	}
	exp := scrapeMetrics(t, f)
	if got := sampleValue(exp, "fpserver_panics_total", nil); got != 1 {
		t.Errorf("fpserver_panics_total = %v, want 1", got)
	}
	if got := sampleValue(exp, "fpserver_requests_total",
		map[string]string{"route": "/api/v1/stats", "class": "5xx"}); got != 1 {
		t.Errorf("panicked request not counted as 5xx (got %v)", got)
	}
	if got := sampleValue(exp, "fpserver_request_duration_seconds_count",
		map[string]string{"route": "/api/v1/stats"}); got != 1 {
		t.Errorf("panicked request missing from latency histogram (got %v)", got)
	}
}

// TestStatusRecorderImplicitOK verifies a handler that writes the body
// without WriteHeader is counted as 200, and that Flush reaches the
// underlying writer through the recorder.
func TestStatusRecorderImplicitOK(t *testing.T) {
	f := newFixture(t, nil)
	flushed := false
	h := f.srv.withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "streamed chunk\n")
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
			flushed = true
		}
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if !flushed {
		t.Error("recorder does not expose http.Flusher")
	}
	if !rr.Flushed {
		t.Error("Flush did not reach the underlying ResponseWriter")
	}
	exp := scrapeMetrics(t, f)
	if got := sampleValue(exp, "fpserver_requests_total",
		map[string]string{"route": "/healthz", "class": "2xx"}); got != 1 {
		t.Errorf("implicit 200 counted as %v 2xx requests, want 1", got)
	}
}

// TestRouteLabelBoundsCardinality verifies unknown paths collapse into one
// label value instead of minting a series per path.
func TestRouteLabelBoundsCardinality(t *testing.T) {
	f := newFixture(t, nil)
	for _, p := range []string{"/nope", "/nope/2", "/a/b/c"} {
		resp, err := http.Get(f.ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	exp := scrapeMetrics(t, f)
	if got := sampleValue(exp, "fpserver_requests_total",
		map[string]string{"route": "other"}); got != 3 {
		t.Errorf("unknown paths produced %v requests under route=other, want 3", got)
	}
	for _, s := range exp.Samples {
		if s.Name == "fpserver_requests_total" && strings.HasPrefix(s.Labels["route"], "/nope") {
			t.Errorf("raw path leaked into route label: %v", s.Labels)
		}
	}
}

// TestMetricsContentType pins the exact Prometheus text exposition
// Content-Type the scrape endpoint must advertise — collectors key parser
// selection off the version parameter, so this is a wire-format contract.
func TestMetricsContentType(t *testing.T) {
	f := newFixture(t, nil)
	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if ct := resp.Header.Get("Content-Type"); ct != want {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, want)
	}
}
