package collectserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestIdempotentReplay(t *testing.T) {
	f := newFixture(t, nil)
	tok := f.startSession(t, "u1")
	req := SubmitRequest{
		Token:          tok,
		Records:        []FPRecord{validRecord(0), validRecord(1)},
		IdempotencyKey: "batch-0001",
	}
	resp, body := f.post(t, "/api/v1/fingerprints", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, body)
	}
	var first SubmitResponse
	json.Unmarshal(body, &first)

	// The retry (same key) must replay the ack without re-storing.
	resp, body = f.post(t, "/api/v1/fingerprints", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("replayed submit: %d %s", resp.StatusCode, body)
	}
	var second SubmitResponse
	json.Unmarshal(body, &second)
	if first != second {
		t.Errorf("replay ack %+v differs from original %+v", second, first)
	}
	if got := f.store.Count(); got != 2 {
		t.Errorf("store has %d records after replay, want 2", got)
	}

	// A different key is a genuinely new batch.
	req.IdempotencyKey = "batch-0002"
	resp, _ = f.post(t, "/api/v1/fingerprints", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second batch: %d", resp.StatusCode)
	}
	if got := f.store.Count(); got != 4 {
		t.Errorf("store has %d records, want 4", got)
	}

	exp := scrapeMetrics(t, f)
	if got := sampleValue(exp, "fpserver_idempotent_replays_total", nil); got != 1 {
		t.Errorf("fpserver_idempotent_replays_total = %v, want 1", got)
	}
}

func TestIdempotencyWindowEviction(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.IdempotencyWindow = 2 })
	tok := f.startSession(t, "u1")
	submit := func(key string, it int) {
		t.Helper()
		resp, body := f.post(t, "/api/v1/fingerprints", SubmitRequest{
			Token: tok, Records: []FPRecord{validRecord(it)}, IdempotencyKey: key,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", key, resp.StatusCode, body)
		}
	}
	submit("k1", 0)
	submit("k2", 1)
	submit("k3", 2) // evicts k1
	submit("k1", 3) // no longer cached: stores again
	if got := f.store.Count(); got != 4 {
		t.Errorf("store has %d records, want 4 (k1 evicted and re-accepted)", got)
	}
	submit("k1", 3) // now cached: replayed
	if got := f.store.Count(); got != 4 {
		t.Errorf("store has %d records after replay, want 4", got)
	}
}

func TestSubmitRateLimitSheds(t *testing.T) {
	// Frozen clock: the bucket starts at burst (2×rate) and never refills,
	// so the third submission must be shed with 429 + Retry-After.
	f := newFixture(t, func(c *Config) { c.SubmitRatePerSec = 1 })
	tok := f.startSession(t, "u1")
	var last *http.Response
	codes := []int{}
	for i := 0; i < 3; i++ {
		resp, _ := f.post(t, "/api/v1/fingerprints",
			SubmitRequest{Token: tok, Records: []FPRecord{validRecord(i)}})
		codes = append(codes, resp.StatusCode)
		last = resp
	}
	want := []int{http.StatusAccepted, http.StatusAccepted, http.StatusTooManyRequests}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if last.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := f.store.Count(); got != 2 {
		t.Errorf("store has %d records, want 2", got)
	}
	exp := scrapeMetrics(t, f)
	if got := sampleValue(exp, "fpserver_shed_total", map[string]string{"reason": "rate"}); got != 1 {
		t.Errorf("fpserver_shed_total{reason=rate} = %v, want 1", got)
	}
}

func TestOverloadShedding(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.MaxInFlight = 1 })

	// Occupy the single in-flight slot with a request whose body never
	// finishes arriving, then probe with a second request.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/api/v1/sessions", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait until the slot is actually held, then expect sheds.
	shedSeen := false
	for i := 0; i < 200 && !shedSeen; i++ {
		resp, err := http.Get(f.ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			shedSeen = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("shed response missing Retry-After")
			}
		}
		resp.Body.Close()
	}
	pw.Close()
	<-done
	if !shedSeen {
		t.Fatal("saturated server never shed a request")
	}
	// With the slot released, requests flow again.
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-overload request: %d", resp.StatusCode)
	}
	exp := scrapeMetrics(t, f)
	if got := sampleValue(exp, "fpserver_shed_total", map[string]string{"reason": "overload"}); got < 1 {
		t.Errorf("fpserver_shed_total{reason=overload} = %v, want ≥ 1", got)
	}
}

func TestRequestDeadlineOnContext(t *testing.T) {
	f := newFixture(t, nil)
	sawDeadline := false
	h := f.srv.withMiddleware(http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !sawDeadline {
		t.Error("request context carries no deadline")
	}
}
