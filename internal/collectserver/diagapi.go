package collectserver

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/diag"
)

// Diagnostic-bundle routes: the HTTP surface over the diag.Capturer's
// on-disk ring. Like the other feature-gated routes, they stay registered
// without -diag and answer the stable diag_disabled code.

// diagCapturer returns true when the capturer is configured, else answers
// 503 with the stable diag_disabled code.
func (s *Server) diagCapturer(w http.ResponseWriter) bool {
	if s.cfg.Diag == nil {
		respondError(w, http.StatusServiceUnavailable, CodeDiagDisabled,
			"diagnostic captures not enabled; start the server with -diag")
		return false
	}
	return true
}

// diagListResponse is the payload of GET /api/v1/obs/bundles.
type diagListResponse struct {
	// Bundles lists every retained bundle's manifest, newest first.
	Bundles []diag.Manifest `json:"bundles"`
}

// handleDiagList serves the bundle ring's manifests, newest first.
func (s *Server) handleDiagList(w http.ResponseWriter, r *http.Request) {
	if !s.diagCapturer(w) {
		return
	}
	mans, err := s.cfg.Diag.List()
	if err != nil {
		respondError(w, http.StatusInternalServerError, CodeInternal, "bundle ring unreadable")
		return
	}
	if mans == nil {
		mans = []diag.Manifest{}
	}
	respondJSON(w, http.StatusOK, diagListResponse{Bundles: mans})
}

// handleDiagCapture serves POST /api/v1/obs/bundles: an on-demand capture,
// taken synchronously (cooldown does not apply to manual captures). The
// response is the new bundle's manifest.
func (s *Server) handleDiagCapture(w http.ResponseWriter, r *http.Request) {
	if !s.diagCapturer(w) {
		return
	}
	man, err := s.cfg.Diag.Capture()
	if err != nil {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("diag capture: %v", err)
		}
		respondError(w, http.StatusInternalServerError, CodeInternal, "bundle capture failed")
		return
	}
	respondJSON(w, http.StatusCreated, man)
}

// handleDiagBundle serves GET /api/v1/obs/bundles/{id}: the manifest, or
// with ?file=NAME one raw bundle file (validated against the manifest's
// file list, so only files the capture wrote can be fetched).
func (s *Server) handleDiagBundle(w http.ResponseWriter, r *http.Request) {
	if !s.diagCapturer(w) {
		return
	}
	id := r.PathValue("id")
	man, err := s.cfg.Diag.Manifest(id)
	if err != nil {
		if err == diag.ErrUnknownBundle {
			respondError(w, http.StatusNotFound, CodeUnknownBundle,
				fmt.Sprintf("no bundle %q; list /api/v1/obs/bundles", id))
			return
		}
		respondError(w, http.StatusInternalServerError, CodeInternal, "bundle unreadable")
		return
	}
	name := r.URL.Query().Get("file")
	if name == "" {
		respondJSON(w, http.StatusOK, man)
		return
	}
	known := name == diag.FileManifest
	for _, f := range man.Files {
		if f.Name == name {
			known = true
			break
		}
	}
	if !known {
		respondError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("bundle %s has no file %q; the manifest lists its files", id, name))
		return
	}
	f, err := os.Open(filepath.Join(s.cfg.Diag.Dir(), id, name))
	if err != nil {
		respondError(w, http.StatusInternalServerError, CodeInternal, "bundle file unreadable")
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", diagFileContentType(name))
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

// diagFileContentType picks the response type for a raw bundle file.
func diagFileContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".txt"), strings.HasSuffix(name, ".prom"):
		return "text/plain; charset=utf-8"
	case strings.HasSuffix(name, ".gz"):
		return "application/octet-stream"
	}
	return "application/octet-stream"
}
