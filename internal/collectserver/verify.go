package collectserver

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/vectors"
	"repro/internal/verify"
)

// Verification routes: the authentication surface over the collected
// fingerprint history. POST /api/v1/verify answers whether a submitted set
// of elementary fingerprints vouches for a claimed user;
// GET /api/v1/analytics/verify serves the engine's decision counters and
// the offline calibration backing its threshold. Without -verify both stay
// registered and answer the stable verify_disabled code.

// VerifySample is the wire form of one submitted elementary fingerprint.
type VerifySample struct {
	Vector string `json:"vector"`
	Hash   string `json:"hash"`
}

// VerifyRequest is the payload of POST /api/v1/verify. Unlike submission,
// no session token is required: verification is the login path, and the
// claimed user is the subject, not an authenticated caller.
// IdempotencyKey is accepted for client symmetry with submission but is
// advisory — a decision is a pure function of the stored history, so a
// retried request recomputes the same verdict.
type VerifyRequest struct {
	UserID         string         `json:"user_id"`
	Samples        []VerifySample `json:"samples"`
	IdempotencyKey string         `json:"idempotency_key,omitempty"`
}

// verifierEngine returns the configured verifier or answers 503 and false.
func (s *Server) verifierEngine(w http.ResponseWriter) bool {
	if s.cfg.Verifier == nil {
		respondError(w, http.StatusServiceUnavailable, CodeVerifyDisabled,
			"verification not enabled; start the server with -verify")
		return false
	}
	return true
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if !s.verifierEngine(w) {
		return
	}
	var req VerifyRequest
	if err := decodeJSON(r, &req); err != nil {
		respondError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if req.UserID == "" {
		respondError(w, http.StatusBadRequest, CodeBadRequest, "user_id is required")
		return
	}
	if len(req.Samples) == 0 {
		respondError(w, http.StatusBadRequest, CodeBadRequest, "at least one sample is required")
		return
	}
	if len(req.Samples) > s.cfg.MaxBatch {
		respondError(w, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Samples), s.cfg.MaxBatch))
		return
	}
	samples := make([]verify.Sample, 0, len(req.Samples))
	for i, vs := range req.Samples {
		v, err := vectors.ParseID(vs.Vector)
		if err != nil {
			respondError(w, http.StatusUnprocessableEntity, CodeInvalidRecord,
				fmt.Sprintf("sample %d: unknown vector %q", i, vs.Vector))
			return
		}
		if err := validateHash(vs.Hash); err != nil {
			respondError(w, http.StatusUnprocessableEntity, CodeInvalidRecord,
				fmt.Sprintf("sample %d: %v", i, err))
			return
		}
		samples = append(samples, verify.Sample{Vector: v, Hash: vs.Hash})
	}

	// Latency accounting uses the wall clock, not the test-overridable
	// cfg.Now: the SLO guards real serving time.
	start := time.Now()
	d, err := s.cfg.Verifier.Verify(req.UserID, samples)
	s.met.verifyDecision(time.Since(start), s.cfg.VerifySLO)
	if err != nil {
		if errors.Is(err, verify.ErrUnknownUser) {
			respondError(w, http.StatusNotFound, CodeUnknownUser,
				fmt.Sprintf("no stored history for user %q", req.UserID))
			return
		}
		respondError(w, http.StatusInternalServerError, CodeInternal, "verification failure")
		return
	}
	respondJSON(w, http.StatusOK, d)
}

// handleAnalyticsVerify serves the verifier's decision counters, active
// threshold and (when loaded) the offline FAR/FRR calibration.
func (s *Server) handleAnalyticsVerify(w http.ResponseWriter, _ *http.Request) {
	if !s.verifierEngine(w) {
		return
	}
	respondJSON(w, http.StatusOK, s.cfg.Verifier.Stats())
}
