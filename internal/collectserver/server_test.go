package collectserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

type fixture struct {
	srv   *Server
	ts    *httptest.Server
	store *storage.Store
	now   time.Time
}

func newFixture(t *testing.T, mutate func(*Config)) *fixture {
	t.Helper()
	st, err := storage.Open(filepath.Join(t.TempDir(), "fp.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{store: st, now: time.Unix(1616284800, 0)} // study start
	cfg := Config{
		Store:      st,
		AdminToken: "admin-secret",
		Now:        func() time.Time { return f.now },
		// Per-test registry so metric assertions never see counts from
		// other tests sharing obs.Default.
		Registry: obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.srv = srv
	f.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(func() { f.ts.Close(); st.Close() })
	return f
}

func (f *fixture) post(t *testing.T, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// decodeData unwraps the v1 success envelope {"data": ...} into dst and
// fails the test on a missing envelope or an error payload.
func decodeData(t *testing.T, body []byte, dst any) {
	t.Helper()
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("envelope decode: %v (%s)", err, body)
	}
	if env.Error != nil {
		t.Fatalf("unexpected API error %s: %s", env.Error.Code, env.Error.Message)
	}
	if env.Data == nil {
		t.Fatalf("response has no data envelope: %s", body)
	}
	if err := json.Unmarshal(env.Data, dst); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) startSession(t *testing.T, user string) string {
	t.Helper()
	resp, body := f.post(t, "/api/v1/sessions",
		NewSessionRequest{UserID: user, UserAgent: "TestUA/1.0", Consent: true})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: %d %s", resp.StatusCode, body)
	}
	if v := resp.Header.Get("X-API-Version"); v != APIVersion {
		t.Fatalf("X-API-Version = %q, want %q", v, APIVersion)
	}
	var out NewSessionResponse
	decodeData(t, body, &out)
	return out.Token
}

func validRecord(it int) FPRecord {
	return FPRecord{Vector: "DC", Iteration: it, Hash: "deadbeef00", Sum: 12.5}
}

func TestHealthAndStudy(t *testing.T) {
	f := newFixture(t, nil)
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	resp, err = http.Get(f.ts.URL + "/api/v1/study")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	var info StudyInfo
	decodeData(t, buf.Bytes(), &info)
	if len(info.Vectors) != 7 || info.Iterations != 30 {
		t.Errorf("study info = %+v", info)
	}
	if !strings.Contains(info.Consent, "consent") {
		t.Error("consent text missing")
	}
}

func TestConsentRequired(t *testing.T) {
	f := newFixture(t, nil)
	resp, body := f.post(t, "/api/v1/sessions",
		NewSessionRequest{UserID: "u1", Consent: false})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("no-consent session: %d %s", resp.StatusCode, body)
	}
	resp, _ = f.post(t, "/api/v1/sessions", NewSessionRequest{Consent: true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user_id: %d", resp.StatusCode)
	}
}

func TestSubmitFlow(t *testing.T) {
	f := newFixture(t, nil)
	tok := f.startSession(t, "u1")

	recs := []FPRecord{validRecord(0), {Vector: "FFT", Iteration: 0, Hash: "cafe01"}}
	resp, body := f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: tok, Records: recs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var out SubmitResponse
	decodeData(t, body, &out)
	if out.Accepted != 2 || out.Total != 2 {
		t.Errorf("submit response = %+v", out)
	}

	stored, err := f.store.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 2 {
		t.Fatalf("stored %d records", len(stored))
	}
	if stored[0].UserID != "u1" || stored[0].UserAgent != "TestUA/1.0" {
		t.Errorf("record enrichment wrong: %+v", stored[0])
	}
	if !stored[0].ReceivedAt.Equal(f.now.UTC()) {
		t.Errorf("timestamp = %v, want %v", stored[0].ReceivedAt, f.now.UTC())
	}
}

func TestSubmitRejectsBadInput(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.MaxBatch = 3; c.MaxIterations = 30 })
	tok := f.startSession(t, "u1")

	cases := []struct {
		name string
		req  SubmitRequest
		code int
	}{
		{"bad token", SubmitRequest{Token: "nope", Records: []FPRecord{validRecord(0)}}, http.StatusUnauthorized},
		{"empty batch", SubmitRequest{Token: tok}, http.StatusBadRequest},
		{"oversized batch", SubmitRequest{Token: tok, Records: []FPRecord{
			validRecord(0), validRecord(1), validRecord(2), validRecord(3)}}, http.StatusRequestEntityTooLarge},
		{"unknown vector", SubmitRequest{Token: tok, Records: []FPRecord{
			{Vector: "Telepathy", Iteration: 0, Hash: "aa"}}}, http.StatusUnprocessableEntity},
		{"iteration out of range", SubmitRequest{Token: tok, Records: []FPRecord{
			{Vector: "DC", Iteration: 30, Hash: "aa"}}}, http.StatusUnprocessableEntity},
		{"non-hex hash", SubmitRequest{Token: tok, Records: []FPRecord{
			{Vector: "DC", Iteration: 0, Hash: "XYZ!"}}}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, body := f.post(t, "/api/v1/fingerprints", c.req)
		if resp.StatusCode != c.code {
			t.Errorf("%s: got %d (%s), want %d", c.name, resp.StatusCode, body, c.code)
		}
	}
	if f.store.Count() != 0 {
		t.Errorf("rejected submissions persisted: %d", f.store.Count())
	}
}

func TestAuxiliaryVectorNamesAccepted(t *testing.T) {
	f := newFixture(t, nil)
	tok := f.startSession(t, "u1")
	for _, v := range []string{"MathJS", "Canvas", "Fonts", "UserAgent", "Hybrid", "Merged Signals"} {
		resp, body := f.post(t, "/api/v1/fingerprints", SubmitRequest{
			Token: tok, Records: []FPRecord{{Vector: v, Iteration: 0, Hash: "00ff"}}})
		if resp.StatusCode != http.StatusAccepted {
			t.Errorf("vector %q rejected: %d %s", v, resp.StatusCode, body)
		}
	}
}

func TestSessionExpiry(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.SessionTTL = time.Minute })
	tok := f.startSession(t, "u1")
	f.now = f.now.Add(2 * time.Minute)
	resp, _ := f.post(t, "/api/v1/fingerprints",
		SubmitRequest{Token: tok, Records: []FPRecord{validRecord(0)}})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("expired session accepted: %d", resp.StatusCode)
	}
}

func TestSessionQuota(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.MaxRecordsPerSession = 2 })
	tok := f.startSession(t, "u1")
	resp, _ := f.post(t, "/api/v1/fingerprints",
		SubmitRequest{Token: tok, Records: []FPRecord{validRecord(0), validRecord(1)}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, _ = f.post(t, "/api/v1/fingerprints",
		SubmitRequest{Token: tok, Records: []FPRecord{validRecord(2)}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("quota not enforced: %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	f := newFixture(t, nil)
	tok := f.startSession(t, "u1")
	f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: tok, Records: []FPRecord{
		validRecord(0), {Vector: "FFT", Iteration: 0, Hash: "aa"}, {Vector: "FFT", Iteration: 1, Hash: "ab"},
	}})
	resp, err := http.Get(f.ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	var stats StatsResponse
	decodeData(t, buf.Bytes(), &stats)
	if stats.Records != 3 || stats.Users != 1 || stats.PerVector["FFT"] != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestStatsVectorFilter(t *testing.T) {
	f := newFixture(t, nil)
	tok := f.startSession(t, "u1")
	f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: tok, Records: []FPRecord{
		validRecord(0), {Vector: "FFT", Iteration: 0, Hash: "aa"}, {Vector: "FFT", Iteration: 1, Hash: "ab"},
	}})

	// Regression: handleStats used to ignore its *http.Request entirely, so
	// ?vector= silently returned global counts.
	resp, err := http.Get(f.ts.URL + "/api/v1/stats?vector=FFT")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	var stats StatsResponse
	decodeData(t, buf.Bytes(), &stats)
	if stats.Records != 2 || stats.Users != 1 || stats.Vector != "FFT" {
		t.Errorf("filtered stats = %+v", stats)
	}
	if len(stats.PerVector) != 1 || stats.PerVector["FFT"] != 2 {
		t.Errorf("filtered per_vector = %+v", stats.PerVector)
	}

	// A known vector with no records yet is an empty result, not an error.
	resp, err = http.Get(f.ts.URL + "/api/v1/stats?vector=AM")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty known vector: %d %s", resp.StatusCode, buf.Bytes())
	}
	stats = StatsResponse{}
	decodeData(t, buf.Bytes(), &stats)
	if stats.Records != 0 || stats.Vector != "AM" {
		t.Errorf("empty-vector stats = %+v", stats)
	}

	// A vector name that can never exist is a client bug: bad_request.
	resp, err = http.Get(f.ts.URL + "/api/v1/stats?vector=Telepathy")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown vector filter: %d", resp.StatusCode)
	}
	var env Envelope
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil || env.Error == nil {
		t.Fatalf("unknown vector body = %s", buf.Bytes())
	}
	if env.Error.Code != CodeBadRequest {
		t.Errorf("error code = %q, want %q", env.Error.Code, CodeBadRequest)
	}
}

func TestExportAuth(t *testing.T) {
	f := newFixture(t, nil)
	tok := f.startSession(t, "u1")
	f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: tok, Records: []FPRecord{validRecord(0)}})

	// No token.
	resp, err := http.Get(f.ts.URL + "/api/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated export: %d", resp.StatusCode)
	}

	// Wrong token.
	req, _ := http.NewRequest(http.MethodGet, f.ts.URL+"/api/v1/export", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong-token export: %d", resp.StatusCode)
	}

	// Right token streams NDJSON.
	req.Header.Set("Authorization", "Bearer admin-secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("export content type %q", ct)
	}
	if !strings.Contains(buf.String(), `"user_id":"u1"`) {
		t.Errorf("export missing record: %q", buf.String())
	}
}

func TestExportDisabledWithoutAdminToken(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.AdminToken = "" })
	resp, err := http.Get(f.ts.URL + "/api/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("export without admin token configured: %d", resp.StatusCode)
	}
}

func TestMalformedJSONRejected(t *testing.T) {
	f := newFixture(t, nil)
	resp, err := http.Post(f.ts.URL+"/api/v1/sessions", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d", resp.StatusCode)
	}
	resp, err = http.Post(f.ts.URL+"/api/v1/sessions", "text/plain", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong content type: %d", resp.StatusCode)
	}
}

func TestSessionGC(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.SessionTTL = time.Minute })
	for i := 0; i < 5; i++ {
		f.startSession(t, fmt.Sprintf("u%d", i))
	}
	if got := f.srv.ActiveSessions(); got != 5 {
		t.Fatalf("active sessions = %d", got)
	}
	f.now = f.now.Add(3 * time.Minute)
	f.startSession(t, "u-new") // triggers GC
	if got := f.srv.ActiveSessions(); got != 1 {
		t.Errorf("after GC: %d sessions, want 1", got)
	}
}

func TestNewRequiresStore(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without store succeeded")
	}
}
