package collectserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/verify"
)

// decodeAPIError unwraps the v1 error envelope and returns the stable code.
func decodeAPIError(t *testing.T, body []byte) string {
	t.Helper()
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("envelope decode: %v (%s)", err, body)
	}
	if env.Error == nil {
		t.Fatalf("expected error envelope, got: %s", body)
	}
	return env.Error.Code
}

func TestVerifyDisabled(t *testing.T) {
	f := newFixture(t, nil)
	resp, body := f.post(t, "/api/v1/verify", VerifyRequest{
		UserID: "u1", Samples: []VerifySample{{Vector: "DC", Hash: "aa"}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("verify without -verify: %d %s", resp.StatusCode, body)
	}
	if code := decodeAPIError(t, body); code != CodeVerifyDisabled {
		t.Errorf("error code = %q, want %q", code, CodeVerifyDisabled)
	}
	resp, err := http.Get(f.ts.URL + "/api/v1/analytics/verify")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable ||
		decodeAPIError(t, buf.Bytes()) != CodeVerifyDisabled {
		t.Errorf("analytics/verify without -verify: %d %s", resp.StatusCode, buf.Bytes())
	}
}

// TestVerifyFlow drives the full authentication path over HTTP: enroll via
// the real submission API, then accept a genuine claim, reject an
// impostor, and answer stable codes for the failure modes.
func TestVerifyFlow(t *testing.T) {
	var reg *obs.Registry
	f := newFixture(t, func(cfg *Config) {
		cfg.Verifier = verify.New(verify.Config{})
		// 1ns SLO: every decision counts as slow, pinning the counter pair
		// the watch verify-latency rule reads.
		cfg.VerifySLO = time.Nanosecond
		reg = cfg.Registry
	})
	tok := f.startSession(t, "alice")
	resp, body := f.post(t, "/api/v1/fingerprints", SubmitRequest{Token: tok, Records: []FPRecord{
		{Vector: "DC", Iteration: 0, Hash: "aa01"},
		{Vector: "FFT", Iteration: 0, Hash: "ff01"},
		{Vector: "Canvas", Iteration: 0, Hash: "cc01"}, // aux surface: not enrolled
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}

	// Genuine: the stored hashes under the same user accept with score 1.
	resp, body = f.post(t, "/api/v1/verify", VerifyRequest{UserID: "alice", Samples: []VerifySample{
		{Vector: "DC", Hash: "aa01"}, {Vector: "FFT", Hash: "ff01"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("genuine verify: %d %s", resp.StatusCode, body)
	}
	if v := resp.Header.Get("X-API-Version"); v != APIVersion {
		t.Errorf("X-API-Version = %q", v)
	}
	var d verify.Decision
	decodeData(t, body, &d)
	if !d.Accept || d.Score != 1 || d.UserID != "alice" || len(d.Vectors) != 2 {
		t.Errorf("genuine decision = %+v", d)
	}

	// Impostor: unknown hashes under alice's name reject with score 0.
	resp, body = f.post(t, "/api/v1/verify", VerifyRequest{UserID: "alice", Samples: []VerifySample{
		{Vector: "DC", Hash: "bb99"}, {Vector: "FFT", Hash: "ee99"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("impostor verify: %d %s", resp.StatusCode, body)
	}
	decodeData(t, body, &d)
	if d.Accept || d.Score != 0 {
		t.Errorf("impostor decision = %+v", d)
	}

	// Unknown user → 404 unknown_user.
	resp, body = f.post(t, "/api/v1/verify", VerifyRequest{
		UserID: "mallory", Samples: []VerifySample{{Vector: "DC", Hash: "aa01"}}})
	if resp.StatusCode != http.StatusNotFound || decodeAPIError(t, body) != CodeUnknownUser {
		t.Errorf("unknown user: %d %s", resp.StatusCode, body)
	}

	// Malformed payloads → 400 bad_request.
	for _, req := range []VerifyRequest{
		{Samples: []VerifySample{{Vector: "DC", Hash: "aa01"}}}, // no user_id
		{UserID: "alice"}, // no samples
	} {
		resp, body = f.post(t, "/api/v1/verify", req)
		if resp.StatusCode != http.StatusBadRequest || decodeAPIError(t, body) != CodeBadRequest {
			t.Errorf("malformed %+v: %d %s", req, resp.StatusCode, body)
		}
	}

	// Invalid sample content → 422 invalid_record.
	for _, bad := range []VerifySample{
		{Vector: "NotAVector", Hash: "aa01"},
		{Vector: "DC", Hash: "UPPERCASE"},
	} {
		resp, body = f.post(t, "/api/v1/verify",
			VerifyRequest{UserID: "alice", Samples: []VerifySample{bad}})
		if resp.StatusCode != http.StatusUnprocessableEntity || decodeAPIError(t, body) != CodeInvalidRecord {
			t.Errorf("invalid sample %+v: %d %s", bad, resp.StatusCode, body)
		}
	}

	// Analytics route reflects the decisions (2 scored + 1 unknown).
	resp, err := http.Get(f.ts.URL + "/api/v1/analytics/verify")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	var st verify.StatsSnapshot
	decodeData(t, buf.Bytes(), &st)
	if st.Users != 1 || st.Accepted != 1 || st.Rejected != 1 || st.UnknownUsers != 1 {
		t.Errorf("verify stats = %+v", st)
	}
	if st.Threshold != verify.DefaultThreshold {
		t.Errorf("threshold = %v", st.Threshold)
	}

	// Server-side latency counters: 3 decisions reached the engine, and the
	// 1ns SLO marks all of them slow.
	var mbuf strings.Builder
	if _, err := reg.WriteTo(&mbuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fpserver_verify_requests_total 3",
		"fpserver_verify_slow_total 3",
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCatalog pins the machine-readable surface of GET /api/v1: it must
// mirror the route table exactly and every cataloged route must actually
// be mounted (anything unregistered would 404).
func TestCatalog(t *testing.T) {
	f := newFixture(t, nil)
	resp, err := http.Get(f.ts.URL + "/api/v1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog: %d %s", resp.StatusCode, buf.Bytes())
	}
	var cat CatalogResponse
	decodeData(t, buf.Bytes(), &cat)
	if cat.APIVersion != APIVersion {
		t.Errorf("api_version = %q", cat.APIVersion)
	}
	if len(cat.Routes) != len(routeTable()) {
		t.Fatalf("catalog has %d routes, table has %d", len(cat.Routes), len(routeTable()))
	}

	byPath := map[string]Route{}
	for _, rt := range cat.Routes {
		byPath[rt.Method+" "+rt.Path] = rt
	}
	vr, ok := byPath["POST /api/v1/verify"]
	if !ok || vr.Feature != "verify" || !vr.Envelope {
		t.Fatalf("verify route entry = %+v", vr)
	}
	for _, code := range []string{CodeUnknownUser, CodeVerifyDisabled, CodeBadRequest} {
		found := false
		for _, c := range vr.ErrorCodes {
			found = found || c == code
		}
		if !found {
			t.Errorf("verify route missing error code %q: %v", code, vr.ErrorCodes)
		}
	}

	// Drift check: every cataloged route answers something other than 404
	// under its own method (the mux 404s unregistered patterns).
	for _, rt := range cat.Routes {
		req, err := http.NewRequest(rt.Method, f.ts.URL+rt.Path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		if rt.Method == "POST" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
			t.Errorf("cataloged route %s %s answers %d — not mounted?",
				rt.Method, rt.Path, resp.StatusCode)
		}
	}
}
