package collectserver

import (
	"fmt"
	"net/http"
	"time"
)

// Flight-recorder routes: thin reads over the obs/series store and the
// vectors shadow auditor. Like the analytics routes, they stay registered
// when the backing subsystem is off and answer with a stable error code, so
// clients can distinguish "not enabled" from "not found".

// seriesStore returns true when the series store is configured, else
// answers 503 with the stable series_disabled code.
func (s *Server) seriesStore(w http.ResponseWriter) bool {
	if s.cfg.Series == nil {
		respondError(w, http.StatusServiceUnavailable, CodeSeriesDisabled,
			"metric time-series store not enabled; start the server with -series")
		return false
	}
	return true
}

// handleObsQuery serves GET /api/v1/obs/query?metric=NAME[&range=10m][&delta=true]:
// one metric's retained time-series, optionally restricted to the trailing
// range and converted to per-tick deltas (counters/histograms only).
func (s *Server) handleObsQuery(w http.ResponseWriter, r *http.Request) {
	if !s.seriesStore(w) {
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		respondError(w, http.StatusBadRequest, CodeBadRequest, "metric query parameter is required")
		return
	}
	var since time.Time
	if rng := q.Get("range"); rng != "" {
		d, err := time.ParseDuration(rng)
		if err != nil || d <= 0 {
			respondError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("range %q is not a positive duration (try 10m, 1h)", rng))
			return
		}
		since = s.cfg.Now().Add(-d)
	}
	delta := false
	switch v := q.Get("delta"); v {
	case "", "false", "0":
	case "true", "1":
		delta = true
	default:
		respondError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("delta %q is not a boolean", v))
		return
	}
	res, ok := s.cfg.Series.Query(metric, since, delta)
	if !ok {
		respondError(w, http.StatusNotFound, CodeUnknownMetric,
			fmt.Sprintf("metric %q has never been snapshotted; list /api/v1/obs/series", metric))
		return
	}
	respondJSON(w, http.StatusOK, res)
}

// obsSeriesResponse is the catalog payload of GET /api/v1/obs/series.
type obsSeriesResponse struct {
	// IntervalSeconds is the store's snapshot tick.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Metrics lists every retained metric, name-ordered.
	Metrics any `json:"metrics"`
}

// handleObsSeries serves the compact catalog of retained metrics.
func (s *Server) handleObsSeries(w http.ResponseWriter, r *http.Request) {
	if !s.seriesStore(w) {
		return
	}
	respondJSON(w, http.StatusOK, obsSeriesResponse{
		IntervalSeconds: s.cfg.Series.Interval().Seconds(),
		Metrics:         s.cfg.Series.Catalog(),
	})
}

// handleRenderDivergence serves the shadow auditor's flight-record dump.
// Plain JSON (not the v1 envelope): /debug/* is the operator surface, like
// /debug/health and /debug/pprof.
func (s *Server) handleRenderDivergence(w http.ResponseWriter, r *http.Request) {
	if s.cfg.RenderAudit == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "shadow audit disabled; attach a vectors.ShadowAuditor via Config.RenderAudit")
		return
	}
	s.cfg.RenderAudit.Handler().ServeHTTP(w, r)
}
