package collectserver

import (
	"net/http"
	"strings"
)

// The route table is the single source of truth for the server's surface:
// Handler registers from it, GET /api/v1 serves it as a machine-readable
// catalog, and routeLabel derives its bounded-cardinality label set from
// it. Adding a route here is the only step — the catalog and the metrics
// labels cannot drift from what is actually mounted.

// Route describes one served route. The JSON shape is the catalog entry of
// GET /api/v1.
type Route struct {
	// Method and Path form the ServeMux pattern ("METHOD /path").
	Method string `json:"method"`
	Path   string `json:"path"`
	// Feature names the server flag that must be enabled for the route to
	// answer with data; a disabled feature answers 503 with the stable
	// <feature>_disabled code. Empty means always on.
	Feature string `json:"feature,omitempty"`
	// ErrorCodes lists the stable v1 error codes this route's handler can
	// answer with. Codes any route can hit (overloaded, internal) live in
	// the catalog's global list instead.
	ErrorCodes []string `json:"error_codes,omitempty"`
	// Envelope reports whether responses use the typed v1 envelope.
	// /healthz, /metrics and /debug/* predate the versioned surface.
	Envelope bool `json:"envelope"`

	handler func(*Server, http.ResponseWriter, *http.Request)
}

// routeTable returns the full table. Handlers are method expressions so the
// table itself stays a package-level constant shape, bindable to any
// Server.
func routeTable() []Route {
	return []Route{
		{Method: "GET", Path: "/healthz",
			handler: (*Server).handleHealth},
		{Method: "GET", Path: "/api/v1", Envelope: true,
			handler: (*Server).handleCatalog},
		{Method: "GET", Path: "/api/v1/study", Envelope: true,
			handler: (*Server).handleStudy},
		{Method: "POST", Path: "/api/v1/sessions", Envelope: true,
			ErrorCodes: []string{CodeBadRequest, CodeConsentRequired, CodeRateLimited, CodeInternal},
			handler:    (*Server).handleNewSession},
		{Method: "POST", Path: "/api/v1/fingerprints", Envelope: true,
			ErrorCodes: []string{CodeBadRequest, CodeBatchTooLarge, CodeUnauthorized,
				CodeQuotaExceeded, CodeRateLimited, CodeInvalidRecord, CodeStorageFailure},
			handler: (*Server).handleSubmit},
		{Method: "POST", Path: "/api/v1/verify", Feature: "verify", Envelope: true,
			ErrorCodes: []string{CodeBadRequest, CodeInvalidRecord, CodeUnknownUser, CodeVerifyDisabled},
			handler:    (*Server).handleVerify},
		{Method: "GET", Path: "/api/v1/stats", Envelope: true,
			ErrorCodes: []string{CodeBadRequest, CodeStorageFailure},
			handler:    (*Server).handleStats},
		{Method: "GET", Path: "/api/v1/export", Feature: "export",
			ErrorCodes: []string{CodeExportDisabled, CodeUnauthorized},
			handler:    (*Server).handleExport},
		{Method: "GET", Path: "/api/v1/analytics/entropy", Feature: "analytics", Envelope: true,
			ErrorCodes: []string{CodeAnalyticsDisabled},
			handler:    (*Server).handleAnalyticsEntropy},
		{Method: "GET", Path: "/api/v1/analytics/clusters", Feature: "analytics", Envelope: true,
			ErrorCodes: []string{CodeAnalyticsDisabled},
			handler:    (*Server).handleAnalyticsClusters},
		{Method: "GET", Path: "/api/v1/analytics/stability", Feature: "analytics", Envelope: true,
			ErrorCodes: []string{CodeAnalyticsDisabled},
			handler:    (*Server).handleAnalyticsStability},
		{Method: "GET", Path: "/api/v1/analytics/ami", Feature: "analytics", Envelope: true,
			ErrorCodes: []string{CodeAnalyticsDisabled},
			handler:    (*Server).handleAnalyticsAMI},
		{Method: "GET", Path: "/api/v1/analytics/status", Feature: "analytics", Envelope: true,
			ErrorCodes: []string{CodeAnalyticsDisabled},
			handler:    (*Server).handleAnalyticsStatus},
		{Method: "GET", Path: "/api/v1/analytics/alerts", Feature: "watch", Envelope: true,
			ErrorCodes: []string{CodeWatchDisabled},
			handler:    (*Server).handleAnalyticsAlerts},
		{Method: "GET", Path: "/api/v1/analytics/verify", Feature: "verify", Envelope: true,
			ErrorCodes: []string{CodeVerifyDisabled},
			handler:    (*Server).handleAnalyticsVerify},
		{Method: "GET", Path: "/api/v1/obs/query", Feature: "series", Envelope: true,
			ErrorCodes: []string{CodeSeriesDisabled, CodeBadRequest, CodeUnknownMetric},
			handler:    (*Server).handleObsQuery},
		{Method: "GET", Path: "/api/v1/obs/series", Feature: "series", Envelope: true,
			ErrorCodes: []string{CodeSeriesDisabled},
			handler:    (*Server).handleObsSeries},
		{Method: "GET", Path: "/api/v1/obs/bundles", Feature: "diag", Envelope: true,
			ErrorCodes: []string{CodeDiagDisabled, CodeInternal},
			handler:    (*Server).handleDiagList},
		{Method: "POST", Path: "/api/v1/obs/bundles", Feature: "diag", Envelope: true,
			ErrorCodes: []string{CodeDiagDisabled, CodeInternal},
			handler:    (*Server).handleDiagCapture},
		{Method: "GET", Path: "/api/v1/obs/bundles/{id}", Feature: "diag", Envelope: true,
			ErrorCodes: []string{CodeDiagDisabled, CodeUnknownBundle, CodeBadRequest},
			handler:    (*Server).handleDiagBundle},
		{Method: "GET", Path: "/debug/render/divergence", Feature: "render-audit",
			handler: (*Server).handleRenderDivergence},
		{Method: "GET", Path: "/debug/health",
			handler: (*Server).handleDebugHealth},
		{Method: "GET", Path: "/metrics",
			handler: (*Server).handleMetrics},
	}
}

// knownRoutePaths backs routeLabel: only paths in the table become metric
// label values, so arbitrary client paths cannot mint unbounded series.
var knownRoutePaths = func() map[string]struct{} {
	m := make(map[string]struct{})
	for _, rt := range routeTable() {
		m[rt.Path] = struct{}{}
	}
	return m
}()

// wildcardRoutes backs routeLabel for table paths with a {wildcard}
// segment: a request path matching the literal prefix labels itself with
// the pattern, so /api/v1/obs/bundles/<any-id> stays one metric series.
var wildcardRoutes = func() [][2]string {
	var out [][2]string
	for _, rt := range routeTable() {
		if i := strings.IndexByte(rt.Path, '{'); i > 0 {
			out = append(out, [2]string{rt.Path[:i], rt.Path})
		}
	}
	return out
}()

// CatalogResponse is the payload of GET /api/v1: the API's routes, which
// feature flag gates each, and the stable error codes clients can branch
// on.
type CatalogResponse struct {
	// APIVersion echoes the X-API-Version header value.
	APIVersion string `json:"api_version"`
	// Routes is the full mounted surface.
	Routes []Route `json:"routes"`
	// GlobalErrorCodes can come back from any envelope route regardless of
	// its per-route list: middleware-level shedding and panic recovery.
	GlobalErrorCodes []string `json:"global_error_codes"`
}

// handleCatalog serves the machine-readable route catalog, straight from
// the table Handler registered.
func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	respondJSON(w, http.StatusOK, CatalogResponse{
		APIVersion:       APIVersion,
		Routes:           routeTable(),
		GlobalErrorCodes: []string{CodeOverloaded, CodeInternal},
	})
}
