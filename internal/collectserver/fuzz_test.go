package collectserver

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// FuzzSubmitHandler throws arbitrary bodies at the ingestion endpoints: the
// server must never panic or 5xx on malformed input, and must never persist
// records from rejected requests.
func FuzzSubmitHandler(f *testing.F) {
	f.Add("/api/v1/sessions", []byte(`{"user_id":"u","consent":true}`))
	f.Add("/api/v1/fingerprints", []byte(`{"token":"x","records":[{"vector":"DC","iteration":0,"hash":"aa"}]}`))
	f.Add("/api/v1/fingerprints", []byte(`{"token":`))
	f.Add("/api/v1/sessions", []byte(`[]`))
	f.Add("/api/v1/sessions", []byte("\x00\xff\xfe"))
	// Torn and corrupted bodies — what faultinject's truncate/corrupt
	// classes produce on the wire.
	f.Add("/api/v1/fingerprints", []byte(`{"token":"x","idempotency_key":"aaaa","records":[{"vector":"DC","it`))
	f.Add("/api/v1/fingerprints", []byte(`{"token":"x","records":[{"vector":"D\x00","iteration":-1,"hash":""}]}`))
	f.Add("/api/v1/fingerprints", []byte("{\"token\":\"x\"}\t#cdeadbeef"))

	st, err := storage.Open(filepath.Join(f.TempDir(), "fuzz.ndjson"), storage.Options{})
	if err != nil {
		f.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, path string, body []byte) {
		if path != "/api/v1/sessions" && path != "/api/v1/fingerprints" {
			path = "/api/v1/sessions"
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("%s with %d-byte body returned %d", path, len(body), rec.Code)
		}
		// A fingerprints submission can only be accepted with a valid
		// session token, which the fuzzer cannot guess: nothing persists.
		if path == "/api/v1/fingerprints" && rec.Code < 300 {
			t.Fatalf("unauthenticated submission accepted: %d", rec.Code)
		}
	})
}
