package collectserver

import (
	"encoding/json"
	"net/http"
)

// The v1 API contract (DESIGN.md §10): every /api/v1 route answers with a
// typed JSON envelope and an X-API-Version header. Success is
//
//	{"data": <payload>}
//
// and failure is
//
//	{"error": {"code": "<stable code>", "message": "<human text>"}}
//
// Error codes are part of the contract — clients branch on them, messages
// are free to change. All handlers respond through respondJSON /
// respondError; per-handler marshaling is gone. /healthz and /metrics
// predate the versioned surface and keep their unversioned shapes.

// APIVersion is the value of the X-API-Version header on every /api/v1
// response.
const APIVersion = "1"

// Stable v1 error codes.
const (
	// CodeBadRequest: malformed body, missing field, or bad query param.
	CodeBadRequest = "bad_request"
	// CodeConsentRequired: session creation without the consent click.
	CodeConsentRequired = "consent_required"
	// CodeUnauthorized: unknown/expired session token or bad admin token.
	CodeUnauthorized = "unauthorized"
	// CodeRateLimited: a per-IP token bucket rejected the request.
	CodeRateLimited = "rate_limited"
	// CodeQuotaExceeded: the session's record quota is exhausted.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeBatchTooLarge: more records in one batch than MaxBatch.
	CodeBatchTooLarge = "batch_too_large"
	// CodeInvalidRecord: a record failed content validation.
	CodeInvalidRecord = "invalid_record"
	// CodeStorageFailure: the append-only store rejected the write.
	CodeStorageFailure = "storage_failure"
	// CodeOverloaded: load shedding (in-flight cap) dropped the request.
	CodeOverloaded = "overloaded"
	// CodeExportDisabled: export requested but no admin token configured.
	CodeExportDisabled = "export_disabled"
	// CodeAnalyticsDisabled: /api/v1/analytics/* without -analytics.
	CodeAnalyticsDisabled = "analytics_disabled"
	// CodeWatchDisabled: /api/v1/analytics/alerts without -watch.
	CodeWatchDisabled = "watch_disabled"
	// CodeSeriesDisabled: /api/v1/obs/* without -series.
	CodeSeriesDisabled = "series_disabled"
	// CodeUnknownMetric: /api/v1/obs/query for a metric the series store
	// has never snapshotted.
	CodeUnknownMetric = "unknown_metric"
	// CodeDiagDisabled: /api/v1/obs/bundles without -diag.
	CodeDiagDisabled = "diag_disabled"
	// CodeUnknownBundle: /api/v1/obs/bundles/{id} for a bundle that is not
	// (or is no longer, after ring eviction) on disk.
	CodeUnknownBundle = "unknown_bundle"
	// CodeUnknownUser: /api/v1/verify for a user with no stored history.
	CodeUnknownUser = "unknown_user"
	// CodeVerifyDisabled: /api/v1/verify without -verify.
	CodeVerifyDisabled = "verify_disabled"
	// CodeInternal: recovered panic or other unexpected failure.
	CodeInternal = "internal"
)

// APIError is the failure half of the envelope.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Envelope is the v1 response wrapper. Exactly one of Data and Error is
// set. Clients decode Data into the route's payload type.
type Envelope struct {
	Data  json.RawMessage `json:"data,omitempty"`
	Error *APIError       `json:"error,omitempty"`
}

// respondJSON writes the success envelope {"data": v} with the given HTTP
// status.
func respondJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-API-Version", APIVersion)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Data any `json:"data"`
	}{v})
}

// respondError writes the failure envelope with a stable error code.
func respondError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-API-Version", APIVersion)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error APIError `json:"error"`
	}{APIError{Code: code, Message: msg}})
}
