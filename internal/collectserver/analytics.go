package collectserver

import (
	"fmt"
	"net/http"
)

// Analytics handlers: thin reads over the streaming engine's snapshots.
// All consistency decisions (exact vs snapshot-refreshed) live in
// internal/streaming; these handlers only pick the payload. When the
// server runs without -analytics the routes stay registered and answer
// with a stable error code so clients can distinguish "not enabled" from
// "not found".

// analyticsEngine returns the configured engine or answers 503 and nil.
func (s *Server) analyticsEngine(w http.ResponseWriter) bool {
	if s.cfg.Analytics == nil {
		respondError(w, http.StatusServiceUnavailable, CodeAnalyticsDisabled,
			"analytics engine not enabled; start the server with -analytics")
		return false
	}
	return true
}

func (s *Server) handleAnalyticsEntropy(w http.ResponseWriter, r *http.Request) {
	if !s.analyticsEngine(w) {
		return
	}
	respondJSON(w, http.StatusOK, s.cfg.Analytics.Diversity())
}

func (s *Server) handleAnalyticsClusters(w http.ResponseWriter, r *http.Request) {
	if !s.analyticsEngine(w) {
		return
	}
	respondJSON(w, http.StatusOK, s.cfg.Analytics.Clusters())
}

func (s *Server) handleAnalyticsStability(w http.ResponseWriter, r *http.Request) {
	if !s.analyticsEngine(w) {
		return
	}
	respondJSON(w, http.StatusOK, s.cfg.Analytics.Stability())
}

func (s *Server) handleAnalyticsAMI(w http.ResponseWriter, r *http.Request) {
	if !s.analyticsEngine(w) {
		return
	}
	snap := s.cfg.Analytics.AMI()
	if snap == nil {
		// No snapshot yet: either no records or auto-refresh disabled and
		// RefreshAMI never called. An empty-but-typed payload beats a 404.
		respondJSON(w, http.StatusOK, struct {
			Records int64 `json:"records"`
		}{0})
		return
	}
	respondJSON(w, http.StatusOK, snap)
}

func (s *Server) handleAnalyticsStatus(w http.ResponseWriter, r *http.Request) {
	if !s.analyticsEngine(w) {
		return
	}
	respondJSON(w, http.StatusOK, s.cfg.Analytics.Status())
}

// handleAnalyticsAlerts serves the watch monitor's alert snapshot in the
// v1 envelope, or the stable watch_disabled code when the server runs
// without -watch.
func (s *Server) handleAnalyticsAlerts(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Watch == nil {
		respondError(w, http.StatusServiceUnavailable, CodeWatchDisabled,
			"watch monitor not enabled; start the server with -watch")
		return
	}
	respondJSON(w, http.StatusOK, s.cfg.Watch.Snapshot())
}

// handleDebugHealth serves the plain-text measurement-health verdict —
// grep-able from a shell, no JSON tooling required. When a runtime sampler
// is attached a resources section follows the watch verdict.
func (s *Server) handleDebugHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Watch == nil {
		fmt.Fprintln(w, "status: watch disabled")
	} else {
		fmt.Fprint(w, s.cfg.Watch.HealthText())
	}
	if s.cfg.Runtime == nil {
		return
	}
	s.cfg.Runtime.Sample()
	st := s.cfg.Runtime.Stats()
	fmt.Fprintf(w, "runtime goroutines: %d\nruntime heap_inuse_bytes: %d\nruntime last_gc_pause_seconds: %.6f\nruntime gc_pause_p99_seconds: %.6f\nruntime gomaxprocs: %d\n",
		st.Goroutines, st.HeapInuseBytes, st.LastGCPauseSeconds, st.GCPauseP99Seconds, st.GOMAXPROCS)
}
