package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

// allKernels returns every registered kernel plus a perturbed one.
func allKernels() []Kernel {
	ks := []Kernel{Libm, Poly7, Poly5, Lut4096, Lut1024, Fdlib,
		Perturbed(Libm, "libm+fma", 3e-7)}
	return ks
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"libm", "poly7", "poly5", "lut4096", "lut1024", "fdlib"} {
		k, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if k.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, k.Name())
		}
	}
	if _, err := Lookup("no-such-kernel"); err == nil {
		t.Error("Lookup of unknown kernel succeeded")
	}
}

func TestNamesCoversRegistry(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("Names() = %v, want at least the 6 built-ins", names)
	}
	for _, n := range names {
		if _, err := Lookup(n); err != nil {
			t.Errorf("name %q listed but not resolvable", n)
		}
	}
}

// TestSinAccuracy checks each kernel approximates sine within its class's
// tolerance over a wide argument range.
func TestSinAccuracy(t *testing.T) {
	tolerances := map[string]float64{
		"libm":     0,
		"poly7":    3e-4,
		"poly5":    1e-2,
		"lut4096":  5e-6,
		"lut1024":  1e-4,
		"fdlib":    1e-6,
		"libm+fma": 1e-5,
	}
	for _, k := range allKernels() {
		tol := tolerances[k.Name()]
		for x := -50.0; x <= 50.0; x += 0.137 {
			got := k.Sin(x)
			want := math.Sin(x)
			if diff := math.Abs(got - want); diff > tol {
				t.Fatalf("%s.Sin(%g) = %g, want %g (|diff| %g > tol %g)",
					k.Name(), x, got, want, diff, tol)
			}
		}
	}
}

func TestCosMatchesShiftedSin(t *testing.T) {
	for _, k := range allKernels() {
		for x := -10.0; x <= 10.0; x += 0.31 {
			got := k.Cos(x)
			want := math.Cos(x)
			if math.Abs(got-want) > 1e-2 {
				t.Fatalf("%s.Cos(%g) = %g, want ≈ %g", k.Name(), x, got, want)
			}
		}
	}
}

func TestExpAccuracy(t *testing.T) {
	for _, k := range allKernels() {
		for x := -20.0; x <= 20.0; x += 0.173 {
			got := k.Exp(x)
			want := math.Exp(x)
			rel := math.Abs(got-want) / want
			if rel > 1e-4 {
				t.Fatalf("%s.Exp(%g): rel err %g", k.Name(), x, rel)
			}
		}
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	for _, k := range allKernels() {
		f := func(x float64) bool {
			x = math.Abs(x)
			if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) || x > 1e100 || x < 1e-100 {
				return true
			}
			got := k.Exp(k.Log(x))
			return math.Abs(got-x)/x < 1e-5
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: exp(log(x)) != x: %v", k.Name(), err)
		}
	}
}

func TestPowBasics(t *testing.T) {
	for _, k := range allKernels() {
		cases := []struct{ x, y float64 }{
			{2, 10}, {10, -3}, {1.5, 2.5}, {0.25, 0.5}, {3, 0},
		}
		for _, c := range cases {
			got := k.Pow(c.x, c.y)
			want := math.Pow(c.x, c.y)
			if math.Abs(got-want)/want > 1e-4 {
				t.Errorf("%s.Pow(%g,%g) = %g, want ≈ %g", k.Name(), c.x, c.y, got, want)
			}
		}
	}
}

func TestTanhRange(t *testing.T) {
	for _, k := range allKernels() {
		f := func(x float64) bool {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			y := k.Tanh(x)
			return y >= -1.0000001 && y <= 1.0000001
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s.Tanh out of [-1,1]: %v", k.Name(), err)
		}
	}
}

// TestKernelsDiverge asserts the core fingerprinting property: different
// kernels do NOT produce bit-identical outputs when accumulated over a
// signal-like workload. If this ever fails, platform classes collapse.
func TestKernelsDiverge(t *testing.T) {
	ks := allKernels()
	sums := make(map[string]float64, len(ks))
	accumulate := func(k Kernel) float64 {
		var s float64
		phase := 0.0
		for i := 0; i < 4096; i++ {
			phase += 2 * math.Pi * 10000 / 44100
			s += float64(float32(k.Sin(phase)))
		}
		return s
	}
	for _, k := range ks {
		sums[k.Name()] = accumulate(k)
	}
	seen := map[float64]string{}
	for name, s := range sums {
		if prev, dup := seen[s]; dup {
			t.Errorf("kernels %q and %q produced identical accumulated output %v", prev, name, s)
		}
		seen[s] = name
	}
}

// TestKernelsDeterministic asserts repeated evaluation is bit-identical.
func TestKernelsDeterministic(t *testing.T) {
	for _, k := range allKernels() {
		for x := -5.0; x < 5.0; x += 0.7 {
			if k.Sin(x) != k.Sin(x) || k.Exp(x) != k.Exp(x) {
				t.Fatalf("%s is nondeterministic at %g", k.Name(), x)
			}
		}
	}
}

func TestPerturbedDiffersFromBase(t *testing.T) {
	p := Perturbed(Libm, "test-perturb", 1e-9)
	diff := false
	for x := 0.1; x < 10; x += 0.1 {
		if p.Sin(x) != Libm.Sin(x) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("perturbed kernel identical to base over test range")
	}
}

func BenchmarkKernelSin(b *testing.B) {
	for _, k := range allKernels() {
		b.Run(k.Name(), func(b *testing.B) {
			x := 0.0
			var s float64
			for i := 0; i < b.N; i++ {
				x += 1.4247
				s += k.Sin(x)
			}
			_ = s
		})
	}
}
