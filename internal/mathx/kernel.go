// Package mathx provides interchangeable implementations ("kernels") of the
// transcendental math functions used by audio DSP code.
//
// Real browsers differ in how their audio stacks compute sin, cos, exp and
// pow: platform libm implementations, hand-rolled polynomial approximations
// inside the audio engine, SIMD lookup tables in DSP libraries, and so on.
// Those tiny last-ulp differences are precisely what Web Audio
// fingerprinting exploits (see the paper's §5 "Causal Factors" and the
// Mozilla bug it cites about floating-point differences between platforms).
//
// A Kernel bundles one coherent set of such implementations. The webaudio
// engine is parameterized by a Kernel, so two simulated platforms with
// different kernels produce genuinely different rendered float32 buffers —
// and therefore different fingerprints — while two platforms sharing a
// kernel collide, exactly like real devices sharing an audio stack.
package mathx

import "fmt"

// Kernel is one coherent implementation of the transcendental functions the
// audio engine needs. Implementations must be deterministic and
// goroutine-safe.
type Kernel interface {
	// Name identifies the kernel (stable across runs; part of the
	// simulated platform's identity).
	Name() string
	// Sin returns the sine of x (radians).
	Sin(x float64) float64
	// Cos returns the cosine of x (radians).
	Cos(x float64) float64
	// Exp returns e**x.
	Exp(x float64) float64
	// Log returns the natural logarithm of x.
	Log(x float64) float64
	// Pow returns x**y.
	Pow(x, y float64) float64
	// Tanh returns the hyperbolic tangent of x.
	Tanh(x float64) float64
}

// registry of all built-in kernels, keyed by name.
var registry = map[string]Kernel{}

func register(k Kernel) Kernel {
	if _, dup := registry[k.Name()]; dup {
		panic(fmt.Sprintf("mathx: duplicate kernel %q", k.Name()))
	}
	registry[k.Name()] = k
	return k
}

// Lookup returns the kernel registered under name.
func Lookup(name string) (Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("mathx: unknown kernel %q", name)
	}
	return k, nil
}

// Names returns the names of all registered kernels in unspecified order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}
