package mathx

import "math"

// ---------------------------------------------------------------------------
// Reference kernel: Go's math package (correctly-rounded-ish libm). Stands in
// for a mainstream desktop libm (e.g. glibc on x86-64).

// Libm is the reference kernel backed directly by Go's math package.
var Libm = register(libmKernel{})

type libmKernel struct{}

func (libmKernel) Name() string             { return "libm" }
func (libmKernel) Sin(x float64) float64    { return math.Sin(x) }
func (libmKernel) Cos(x float64) float64    { return math.Cos(x) }
func (libmKernel) Exp(x float64) float64    { return math.Exp(x) }
func (libmKernel) Log(x float64) float64    { return math.Log(x) }
func (libmKernel) Pow(x, y float64) float64 { return math.Pow(x, y) }
func (libmKernel) Tanh(x float64) float64   { return math.Tanh(x) }

// ---------------------------------------------------------------------------
// Polynomial kernels: minimax-style polynomial approximations after range
// reduction, at several accuracy tiers. These stand in for hand-rolled
// vectorizable approximations found inside audio engines and mobile DSP
// libraries. Higher order ⇒ closer to libm but still not bit-identical.

// Poly7 approximates sin/cos with degree-7 polynomials (float64 ops).
var Poly7 = register(polyKernel{name: "poly7", order: 7})

// Poly5 approximates sin/cos with degree-5 polynomials; noticeably coarser.
var Poly5 = register(polyKernel{name: "poly5", order: 5})

type polyKernel struct {
	name  string
	order int
}

func (p polyKernel) Name() string { return p.name }

// reduce maps x into [-pi, pi) and returns it.
func reduce(x float64) float64 {
	const twoPi = 2 * math.Pi
	x = math.Mod(x, twoPi)
	if x >= math.Pi {
		x -= twoPi
	} else if x < -math.Pi {
		x += twoPi
	}
	return x
}

func (p polyKernel) Sin(x float64) float64 {
	x = reduce(x)
	// Fold into [-pi/2, pi/2] where the Taylor-style polynomial behaves.
	if x > math.Pi/2 {
		x = math.Pi - x
	} else if x < -math.Pi/2 {
		x = -math.Pi - x
	}
	x2 := x * x
	if p.order >= 7 {
		// sin x ≈ x (1 - x²/6 (1 - x²/20 (1 - x²/42)))
		return x * (1 - x2/6*(1-x2/20*(1-x2/42)))
	}
	return x * (1 - x2/6*(1-x2/20))
}

func (p polyKernel) Cos(x float64) float64 {
	return p.Sin(x + math.Pi/2)
}

func (p polyKernel) Exp(x float64) float64 {
	// exp(x) = 2**(x/ln2); split into integer and fractional parts and use a
	// short polynomial for the fractional exponent.
	const log2e = 1 / math.Ln2
	t := x * log2e
	n := math.Round(t)
	f := (t - n) * math.Ln2
	// Degree-7 Taylor for e**f, f ∈ [-ln2/2, ln2/2].
	pf := 1 + f*(1+f/2*(1+f/3*(1+f/4*(1+f/5*(1+f/6*(1+f/7))))))
	return math.Ldexp(pf, int(n))
}

func (p polyKernel) Log(x float64) float64 {
	if x <= 0 {
		return math.Log(x) // preserve -Inf / NaN semantics
	}
	frac, exp := math.Frexp(x) // x = frac * 2**exp, frac ∈ [0.5, 1)
	// atanh-based series: ln(frac) = 2 atanh((frac-1)/(frac+1)).
	z := (frac - 1) / (frac + 1)
	z2 := z * z
	ln := 2 * z * (1 + z2*(1.0/3+z2*(1.0/5+z2*(1.0/7+z2*(1.0/9+z2*(1.0/11+z2/13))))))
	return ln + float64(exp)*math.Ln2
}

func (p polyKernel) Pow(x, y float64) float64 {
	if x == 0 || x < 0 {
		return math.Pow(x, y)
	}
	return p.Exp(y * p.Log(x))
}

func (p polyKernel) Tanh(x float64) float64 {
	// tanh via the kernel's own exp, as DSP code commonly does.
	if x > 20 {
		return 1
	}
	if x < -20 {
		return -1
	}
	e2 := p.Exp(2 * x)
	return (e2 - 1) / (e2 + 1)
}

// ---------------------------------------------------------------------------
// Lookup-table kernels: interpolated sine tables, the classic embedded /
// wavetable approach. Table size controls the accuracy class.

// Lut4096 uses a 4096-entry linearly interpolated sine table.
var Lut4096 = register(newLutKernel("lut4096", 4096))

// Lut1024 uses a 1024-entry table; coarser, typical of low-power stacks.
var Lut1024 = register(newLutKernel("lut1024", 1024))

type lutKernel struct {
	name  string
	table []float64 // one full period of sine, len+1 entries (wrap)
}

func newLutKernel(name string, n int) lutKernel {
	// Midpoint-sampled table (entries at (i+0.5)·2π/n): avoids storing the
	// exact zeros/ones of grid sampling, a common wavetable layout. The
	// interpolation bias relative to libm is ~1−cos(π/n), comfortably above
	// float32 resolution — which is what makes this lineage fingerprintable.
	t := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		t[i] = math.Sin(2 * math.Pi * (float64(i) + 0.5) / float64(n))
	}
	return lutKernel{name: name, table: t}
}

func (l lutKernel) Name() string { return l.name }

func (l lutKernel) Sin(x float64) float64 {
	n := len(l.table) - 1
	// Map x to table position: entry i holds sin at (i+0.5)·2π/n.
	pos := x/(2*math.Pi)*float64(n) - 0.5
	pos = math.Mod(pos, float64(n))
	if pos < 0 {
		pos += float64(n)
	}
	i := int(pos)
	frac := pos - float64(i)
	return l.table[i] + (l.table[i+1]-l.table[i])*frac
}

func (l lutKernel) Cos(x float64) float64 { return l.Sin(x + math.Pi/2) }

// Non-trig functions delegate to libm: real table-based stacks typically only
// specialize the oscillator path.
func (l lutKernel) Exp(x float64) float64    { return math.Exp(x) }
func (l lutKernel) Log(x float64) float64    { return math.Log(x) }
func (l lutKernel) Pow(x, y float64) float64 { return math.Pow(x, y) }
func (l lutKernel) Tanh(x float64) float64   { return math.Tanh(x) }

// ---------------------------------------------------------------------------
// fdlibm-style kernel: same algorithms as libm but with a deliberately
// different (coarser) payne–hanek-free argument reduction, standing in for
// an independently developed libm lineage (e.g. Bionic vs glibc vs MSVCRT).

// Fdlib approximates an independent libm lineage.
var Fdlib = register(fdlibKernel{})

type fdlibKernel struct{}

func (fdlibKernel) Name() string { return "fdlib" }

func (fdlibKernel) Sin(x float64) float64 {
	// Cody–Waite two-constant reduction to r ∈ [-π/2, π/2], then this
	// lineage's own degree-11 Taylor kernel. Its error (≲ 6e-7 at the range
	// edge) sits above float32 resolution, so buffers rendered through it
	// differ visibly from libm's — while agreeing to six decimal places.
	const (
		pio2hi = 1.57079632679489655800e+00
		pio2lo = 6.12323399573676603587e-17
	)
	k := math.Round(x / (pio2hi * 2))
	r := x - k*2*pio2hi - k*2*pio2lo
	r2 := r * r
	s := r * (1 - r2/6*(1-r2/20*(1-r2/42*(1-r2/72*(1-r2/110)))))
	if int64(k)&1 != 0 {
		s = -s // sin(r + kπ) = (-1)^k sin(r)
	}
	return s
}

func (f fdlibKernel) Cos(x float64) float64 { return f.Sin(x + math.Pi/2) }

func (fdlibKernel) Exp(x float64) float64 {
	// exp with split reduction; differs from stdlib in the low bits.
	const log2e = 1 / math.Ln2
	n := math.Round(x * log2e)
	hi := x - n*6.93147180369123816490e-01
	lo := n * 1.90821492927058770002e-10
	r := hi - lo
	// Degree-6 polynomial for exp(r), r ∈ [-ln2/2, ln2/2].
	p := 1 + r*(1+r/2*(1+r/3*(1+r/4*(1+r/5*(1+r/6)))))
	return math.Ldexp(p, int(n))
}

func (fdlibKernel) Log(x float64) float64 { return math.Log(x) }
func (f fdlibKernel) Pow(x, y float64) float64 {
	if x <= 0 {
		return math.Pow(x, y)
	}
	return f.Exp(y * math.Log(x))
}
func (fdlibKernel) Tanh(x float64) float64 { return math.Tanh(x) }

// ---------------------------------------------------------------------------
// Perturbed kernels: a base kernel with a deterministic sub-ulp-scale bias on
// selected operations. These stand in for compiler/flag-level differences
// (FMA contraction, flush-to-zero, vectorization order) within a single libm
// lineage — distinctions finer than a whole different algorithm but still
// fingerprintable once accumulated over thousands of samples.

// Perturbed derives a kernel from base whose Sin/Exp results are nudged by
// eps relatively. Registering is the caller's concern; platform code builds
// these on demand with stable names.
func Perturbed(base Kernel, name string, eps float64) Kernel {
	return perturbedKernel{base: base, name: name, eps: eps}
}

type perturbedKernel struct {
	base Kernel
	name string
	eps  float64
}

func (p perturbedKernel) Name() string          { return p.name }
func (p perturbedKernel) Sin(x float64) float64 { return p.base.Sin(x) * (1 + p.eps) }
func (p perturbedKernel) Cos(x float64) float64 { return p.base.Cos(x) * (1 + p.eps) }
func (p perturbedKernel) Exp(x float64) float64 { return p.base.Exp(x) * (1 + p.eps) }
func (p perturbedKernel) Log(x float64) float64 { return p.base.Log(x) }
func (p perturbedKernel) Pow(x, y float64) float64 {
	return p.base.Pow(x, y) * (1 + p.eps)
}
func (p perturbedKernel) Tanh(x float64) float64 { return p.base.Tanh(x) }
