package study

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func ckptConfig(path string) Config {
	return Config{
		Seed: 42, Users: 12, Iterations: 3,
		Parallelism: 1, CheckpointPath: path,
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.ndjson")
	cfg := ckptConfig(path)

	// Reference: an uninterrupted run with no checkpointing at all.
	refCfg := cfg
	refCfg.CheckpointPath = ""
	ref, err := Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}

	// First attempt gets killed after four participants finish.
	ctx, cancel := context.WithCancel(context.Background())
	killCfg := cfg
	killCfg.Progress = func(done, total int) {
		if done >= 4 {
			cancel()
		}
	}
	if _, err := RunContext(ctx, killCfg); err == nil {
		t.Fatal("cancelled run reported success")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	partial := strings.Count(string(raw), "\n") - 1 // minus header
	if partial < 4 || partial >= cfg.Users {
		t.Fatalf("checkpoint holds %d entries after interrupt, want partial progress", partial)
	}

	// The resumed run completes and matches the reference byte for byte.
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Obs, ref.Obs) {
		t.Error("resumed dataset differs from uninterrupted run")
	}
	if !reflect.DeepEqual(ds.Users, ref.Users) {
		t.Error("resumed user list differs")
	}
}

func TestCheckpointConfigMismatchDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.ndjson")
	if _, err := Run(ckptConfig(path)); err != nil {
		t.Fatal(err)
	}

	// Same path, different seed: the old file must not leak into the run.
	cfg2 := ckptConfig(path)
	cfg2.Seed = 43
	ds, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := cfg2
	refCfg.CheckpointPath = ""
	ref, err := Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Obs, ref.Obs) {
		t.Error("stale checkpoint contaminated a run with a different seed")
	}
}

func TestCheckpointTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.ndjson")
	cfg := ckptConfig(path)

	// Interrupt after two users, then tear the file mid-entry.
	ctx, cancel := context.WithCancel(context.Background())
	killCfg := cfg
	killCfg.Progress = func(done, total int) {
		if done >= 2 {
			cancel()
		}
	}
	if _, err := RunContext(ctx, killCfg); err == nil {
		t.Fatal("cancelled run reported success")
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"user":9,"id":"torn","obs":{"DC":["ha`)
	f.Close()

	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := cfg
	refCfg.CheckpointPath = ""
	ref, err := Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Obs, ref.Obs) {
		t.Error("torn checkpoint tail corrupted the resumed dataset")
	}
}

func TestCheckpointCompletedRunRestoresEveryone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.ndjson")
	cfg := ckptConfig(path)
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Second run restores all users from the file; still identical.
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Obs, second.Obs) {
		t.Error("fully-checkpointed rerun differs")
	}
}
