package study

import (
	"repro/internal/collate"
	"repro/internal/vectors"
)

// Index is the dataset-wide interning table: every elementary fingerprint
// hash of every vector is assigned a dense int32 ID once, so the analysis
// sweeps (which rebuild thousands of collation graphs over the same
// observations) never hash a string twice. Users are already dense — their
// slice position in Dataset.Users is their ID. An Index is immutable after
// construction and safe for concurrent readers.
type Index struct {
	byVec map[vectors.ID]*vecIndex
}

// vecIndex holds one vector's interned view of Dataset.Obs.
type vecIndex struct {
	ids      [][]int32        // user → iteration → dense fingerprint ID
	universe int              // number of distinct fingerprints
	intern   map[string]int32 // hash → dense ID
}

// buildIndex interns every observation. Fingerprint IDs are assigned in
// first-appearance order scanning users then iterations, so construction
// is deterministic for a given Obs.
func buildIndex(obs map[vectors.ID][][]string) *Index {
	ix := &Index{byVec: make(map[vectors.ID]*vecIndex, len(obs))}
	for v, rows := range obs {
		total := 0
		for _, r := range rows {
			total += len(r)
		}
		vx := &vecIndex{
			ids:    make([][]int32, len(rows)),
			intern: make(map[string]int32, 256),
		}
		backing := make([]int32, 0, total)
		for ui, r := range rows {
			start := len(backing)
			for _, h := range r {
				id, ok := vx.intern[h]
				if !ok {
					id = int32(len(vx.intern))
					vx.intern[h] = id
				}
				backing = append(backing, id)
			}
			vx.ids[ui] = backing[start:len(backing):len(backing)]
		}
		vx.universe = len(vx.intern)
		ix.byVec[v] = vx
	}
	return ix
}

// NumFingerprints returns the size of vector v's fingerprint universe.
func (ix *Index) NumFingerprints(v vectors.ID) int {
	if vx := ix.byVec[v]; vx != nil {
		return vx.universe
	}
	return 0
}

// FingerprintID returns the dense ID of an elementary fingerprint hash.
func (ix *Index) FingerprintID(v vectors.ID, hash string) (int32, bool) {
	vx := ix.byVec[v]
	if vx == nil {
		return 0, false
	}
	id, ok := vx.intern[hash]
	return id, ok
}

// ObsIDs returns vector v's observations as interned IDs, aligned with
// Dataset.Obs (user → iteration). The returned slices are shared and must
// not be modified.
func (ix *Index) ObsIDs(v vectors.ID) [][]int32 {
	if vx := ix.byVec[v]; vx != nil {
		return vx.ids
	}
	return nil
}

// intGraphOf builds the int-keyed collation graph of v restricted to the
// given iteration indices (nil = all iterations) — the fast-path
// equivalent of Dataset.Graph. It only reads the immutable index, so any
// number of goroutines may build graphs concurrently.
func intGraphOf(ix *Index, numUsers int, v vectors.ID, iters []int) *collate.IntGraph {
	vx := ix.byVec[v]
	g := collate.NewIntGraph(numUsers, vx.universe)
	for ui, row := range vx.ids {
		if iters == nil {
			for _, id := range row {
				g.AddObservation(int32(ui), id)
			}
			continue
		}
		for _, it := range iters {
			g.AddObservation(int32(ui), row[it])
		}
	}
	return g
}

// denseInfo caches a vector's full-graph clustering in interned form: the
// per-user dense labels plus the cluster statistics Tables 2/4 need.
// Everything is computed once under Dataset.mu and immutable afterwards.
type denseInfo struct {
	labels []int32 // per-user cluster label, first-appearance canonical
	k      int     // number of clusters
	unique int     // clusters with exactly one user
}

// dense returns (building and caching on first use) vector v's full-graph
// dense clustering.
func (ds *Dataset) dense(v vectors.ID) *denseInfo {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if d, ok := ds.denseByVec[v]; ok {
		return d
	}
	sp := ds.span("collate/" + v.String())
	defer sp.End()
	g := intGraphOf(ds.indexLocked(), len(ds.Users), v, nil)
	labels := g.Labels()
	k := 0
	for _, l := range labels {
		if int(l) >= k {
			k = int(l) + 1
		}
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	d := &denseInfo{labels: labels, k: len(sizes)}
	for _, s := range sizes {
		if s == 1 {
			d.unique++
		}
	}
	if ds.denseByVec == nil {
		ds.denseByVec = make(map[vectors.ID]*denseInfo, len(vectors.All))
	}
	ds.denseByVec[v] = d
	return d
}

// Index returns the dataset's interning table, building it on first use
// for datasets not produced by Run or FromRecords.
func (ds *Dataset) Index() *Index {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.indexLocked()
}

func (ds *Dataset) indexLocked() *Index {
	if ds.idx == nil {
		ds.idx = buildIndex(ds.Obs)
	}
	return ds.idx
}
