package study

import (
	"sync"
	"testing"

	"repro/internal/population"
)

var (
	fuOnce sync.Once
	fuDS   *Dataset
	fuErr  error
)

// followUpDataset simulates the §5 follow-up campaign: 528 users, Table 5's
// platform mix, rendered fingerprints (not stack-key proxies).
func followUpDataset(t *testing.T) *Dataset {
	t.Helper()
	fuOnce.Do(func() {
		fuDS, fuErr = Run(Config{
			Seed: 20210601, Users: 528, Iterations: 30,
			Mix: population.FollowUpMix(), IDPrefix: "f",
		})
	})
	if fuErr != nil {
		t.Fatalf("follow-up run: %v", fuErr)
	}
	return fuDS
}

// TestTable4FollowUp reproduces Table 4's shape: Math-JS is far less
// diverse than any Web Audio vector — audio fingerprinting goes beyond
// Math-JS fingerprinting.
func TestTable4FollowUp(t *testing.T) {
	ds := followUpDataset(t)
	rows := ds.Table4()
	byName := map[string]DiversityRow{}
	for _, r := range rows {
		byName[r.Name] = r
		t.Logf("Table4 %-8s distinct=%2d unique=%2d entropy=%.3f norm=%.3f",
			r.Name, r.Distinct, r.Unique, r.EntropyBits, r.Normalized)
	}
	mjs := byName["Math JS"]
	dc := byName["DC"]
	fft := byName["FFT"]
	if mjs.Distinct < 3 || mjs.Distinct > 12 {
		t.Errorf("MathJS distinct = %d, want ≈ 7", mjs.Distinct)
	}
	if dc.Distinct < 10 || dc.Distinct > 40 {
		t.Errorf("DC distinct = %d, want ≈ 16", dc.Distinct)
	}
	if mjs.Distinct >= dc.Distinct {
		t.Errorf("MathJS distinct %d ≥ DC distinct %d", mjs.Distinct, dc.Distinct)
	}
	if mjs.EntropyBits >= dc.EntropyBits {
		t.Errorf("MathJS entropy %.3f ≥ DC entropy %.3f", mjs.EntropyBits, dc.EntropyBits)
	}
	if fft.EntropyBits <= dc.EntropyBits {
		t.Errorf("FFT entropy %.3f ≤ DC entropy %.3f", fft.EntropyBits, dc.EntropyBits)
	}
}

// TestTable5FollowUp reproduces the per-platform DC vs Math-JS pattern:
// Windows platforms look uniform on both, macOS and Android hide hardware
// diversity that only the audio path reveals, and Firefox splits on
// Math-JS instead.
func TestTable5FollowUp(t *testing.T) {
	ds := followUpDataset(t)
	rows := ds.Table5(10)
	byPlat := map[string]Table5Row{}
	for _, r := range rows {
		byPlat[r.Platform] = r
		t.Logf("Table5 %-18s users=%3d DC=%2d MathJS=%d", r.Platform, r.Users, r.DC, r.MathJS)
	}
	wc, ok := byPlat["Windows/Chrome"]
	if !ok || wc.Users < 300 {
		t.Fatalf("Windows/Chrome row missing or tiny: %+v", wc)
	}
	if wc.DC != 1 || wc.MathJS != 1 {
		t.Errorf("Windows/Chrome DC/MathJS = %d/%d, want 1/1", wc.DC, wc.MathJS)
	}
	if mc, ok := byPlat["macOS/Chrome"]; ok {
		if mc.DC < 3 {
			t.Errorf("macOS/Chrome DC = %d, want ≥ 3 (Table 5: 5)", mc.DC)
		}
		if mc.MathJS != 1 {
			t.Errorf("macOS/Chrome MathJS = %d, want 1", mc.MathJS)
		}
	}
	if ac, ok := byPlat["Android/Chrome"]; ok {
		if ac.DC < 3 {
			t.Errorf("Android/Chrome DC = %d, want ≥ 3 (Table 5: 5)", ac.DC)
		}
		if ac.MathJS != 1 {
			t.Errorf("Android/Chrome MathJS = %d, want 1", ac.MathJS)
		}
	}
	if wf, ok := byPlat["Windows/Firefox"]; ok {
		if wf.DC != 1 {
			t.Errorf("Windows/Firefox DC = %d, want 1", wf.DC)
		}
		if wf.MathJS < 2 {
			t.Errorf("Windows/Firefox MathJS = %d, want ≥ 2 (Table 5: 3)", wf.MathJS)
		}
	}
	// Rows are sorted by descending user count.
	for i := 1; i < len(rows); i++ {
		if rows[i].Users > rows[i-1].Users {
			t.Errorf("Table 5 rows out of order at %d", i)
		}
	}
}
