package study

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/vectors"
)

// TestRunContextTrace verifies that a traced run records the pipeline
// stages under the study.run span and that tracing does not perturb the
// dataset relative to an untraced run.
func TestRunContextTrace(t *testing.T) {
	cfg := Config{Seed: 7, Users: 12, Iterations: 3}
	root := obs.NewTrace("test")
	ctx := obs.ContextWithSpan(context.Background(), root)
	ds, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	root.End()

	run := root.Find("study.run")
	if run == nil {
		t.Fatal("trace missing study.run span")
	}
	for _, stage := range []string{"population", "render", "intern-index"} {
		if run.Find(stage) == nil {
			t.Errorf("study.run missing %q child span", stage)
		}
	}

	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v, rows := range ds.Obs {
		for ui := range rows {
			for it := range rows[ui] {
				if rows[ui][it] != plain.Obs[v][ui][it] {
					t.Fatalf("traced run diverged at %v user %d iter %d", v, ui, it)
				}
			}
		}
	}
}

// TestRunProgressCallback verifies the Progress callback fires once per
// participant and reaches done == total.
func TestRunProgressCallback(t *testing.T) {
	var (
		mu    sync.Mutex
		calls int
		max   int
		total int
	)
	_, err := Run(Config{
		Seed: 3, Users: 9, Iterations: 2, Parallelism: 4,
		Progress: func(done, tot int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if done > max {
				max = done
			}
			total = tot
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 9 {
		t.Errorf("Progress called %d times, want 9", calls)
	}
	if max != 9 || total != 9 {
		t.Errorf("Progress peaked at done=%d total=%d, want 9/9", max, total)
	}
}

// TestSetTracerRoutesCollation verifies analysis-stage spans attach under
// the tracer installed with SetTracer.
func TestSetTracerRoutesCollation(t *testing.T) {
	ds, err := Run(Config{Seed: 11, Users: 8, Iterations: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sp := obs.NewTrace("exp")
	ds.SetTracer(sp)
	ds.Labels(vectors.All[0])
	sp.End()
	var names []string
	found := false
	for _, c := range sp.Children() {
		names = append(names, c.Name())
		if strings.HasPrefix(c.Name(), "collate/") {
			found = true
		}
	}
	if !found {
		t.Errorf("no collate/* span recorded under tracer; children: %v", names)
	}
}
