package study

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden suite pins the exact numbers a seeded small-population study
// produces — per-vector entropy (Table 2), the Figure 5/9 pairwise AMI
// matrix, and the §5 subset-ranking order. Any change to the simulation,
// collation, or analysis layers that shifts a single digit fails here
// before it can silently skew the paper's reproduced results.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/study -run TestGolden -update

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func goldenDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Run(Config{Seed: 20210115, Users: 64, Iterations: 5, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// checkGolden compares got against testdata/golden/<name>.golden, rewriting
// the file instead when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file %s updated", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (re-run with -update if intentional)\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}

func TestGoldenTable2Entropy(t *testing.T) {
	ds := goldenDataset(t)
	var b strings.Builder
	for _, row := range ds.Table2() {
		// 9 decimals: diversity.Summarize sums in map order, so the last
		// couple of ULPs can jitter run to run; everything above that is
		// deterministic and pinned.
		fmt.Fprintf(&b, "%-12s users=%d distinct=%d unique=%d entropy=%.9f normalized=%.9f\n",
			row.Name, row.Users, row.Distinct, row.Unique, row.EntropyBits, row.Normalized)
	}
	checkGolden(t, "table2_entropy", b.String())
}

func TestGoldenFigure5AMI(t *testing.T) {
	ds := goldenDataset(t)
	m, err := ds.PairwiseVectorAMI()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, row := range m {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.9f", v)
		}
		b.WriteByte('\n')
	}
	checkGolden(t, "figure5_ami", b.String())
}

func TestGoldenSubsetRanking(t *testing.T) {
	ds := goldenDataset(t)
	res := ds.SubsetRanking(4)
	var b strings.Builder
	for i, ranking := range res.Rankings {
		fmt.Fprintf(&b, "subset %d: %s\n", i, strings.Join(ranking, " > "))
	}
	fmt.Fprintf(&b, "consistent: %v\n", res.Consistent)
	checkGolden(t, "subset_ranking", b.String())
}

// TestGoldenDeterministicAcrossParallelism guards the property the golden
// files rely on: the numbers cannot depend on worker scheduling.
func TestGoldenDeterministicAcrossParallelism(t *testing.T) {
	cfg := Config{Seed: 20210115, Users: 64, Iterations: 5}
	cfg.Parallelism = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sRows, pRows := serial.Table2(), parallel.Table2()
	for i := range sRows {
		s, p := sRows[i], pRows[i]
		if s.Name != p.Name || s.Users != p.Users || s.Distinct != p.Distinct || s.Unique != p.Unique {
			t.Errorf("Table2 row %d differs across parallelism: %+v vs %+v", i, s, p)
			continue
		}
		// Entropy sums run in map order, so allow ULP-level float noise.
		if d := s.EntropyBits - p.EntropyBits; d > 1e-9 || d < -1e-9 {
			t.Errorf("Table2 row %d entropy differs across parallelism: %v vs %v", i, s.EntropyBits, p.EntropyBits)
		}
	}
}
