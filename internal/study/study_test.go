package study

import (
	"math"
	"sync"
	"testing"

	"repro/internal/diversity"
	"repro/internal/vectors"
)

// The package-level fixture: one full-scale main-study run (N=2093, k=30)
// shared by every test, mirroring the paper's primary dataset.
var (
	mainOnce sync.Once
	mainDS   *Dataset
	mainErr  error
)

func mainDataset(t *testing.T) *Dataset {
	t.Helper()
	mainOnce.Do(func() {
		mainDS, mainErr = Run(Config{Seed: 20220325, Users: 2093, Iterations: 30})
	})
	if mainErr != nil {
		t.Fatalf("study run: %v", mainErr)
	}
	return mainDS
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Users: 0, Iterations: 30}); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := Run(Config{Users: 5, Iterations: 0}); err == nil {
		t.Error("zero iterations accepted")
	}
}

// TestRunDeterministicAcrossParallelism: results must not depend on worker
// scheduling.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	a, err := Run(Config{Seed: 99, Users: 40, Iterations: 6, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 99, Users: 40, Iterations: 6, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vectors.All {
		for ui := range a.Obs[v] {
			for it := range a.Obs[v][ui] {
				if a.Obs[v][ui][it] != b.Obs[v][ui][it] {
					t.Fatalf("%v user %d iter %d differs across parallelism", v, ui, it)
				}
			}
		}
	}
}

// TestTable1Stability reproduces Table 1's structure: DC perfectly stable
// (exactly one fingerprint for every user), every FFT-path vector fickle
// with min 1, a bounded max, and means ordered FFT ≤ Hybrid ≈ Custom <
// Merged < AM ≈ FM.
func TestTable1Stability(t *testing.T) {
	ds := mainDataset(t)
	rows := ds.Table1()
	byVec := map[vectors.ID]StabilityRow{}
	for _, r := range rows {
		byVec[r.Vector] = r
		t.Logf("Table1 %-14s min=%d max=%2d mean=%.2f", r.Vector, r.Min, r.Max, r.Mean)
	}

	dc := byVec[vectors.DC]
	if dc.Min != 1 || dc.Max != 1 || dc.Mean != 1.0 {
		t.Errorf("DC row = %+v, want exactly 1/1/1.0", dc)
	}
	paperMeans := map[vectors.ID]float64{
		vectors.FFT:           1.81,
		vectors.Hybrid:        2.08,
		vectors.CustomSignal:  2.08,
		vectors.MergedSignals: 2.92,
		vectors.AM:            4.28,
		vectors.FM:            4.33,
	}
	for v, want := range paperMeans {
		r := byVec[v]
		if r.Min != 1 {
			t.Errorf("%v min = %d, want 1 (some users are perfectly stable)", v, r.Min)
		}
		if r.Max < 6 {
			t.Errorf("%v max = %d — no heavy-load tail", v, r.Max)
		}
		if r.Max >= 30 {
			t.Errorf("%v max = %d — pool must stay below the iteration count", v, r.Max)
		}
		if math.Abs(r.Mean-want) > 0.75 {
			t.Errorf("%v mean = %.2f, want ≈ %.2f (paper)", v, r.Mean, want)
		}
	}
	if !(byVec[vectors.FFT].Mean <= byVec[vectors.Hybrid].Mean+0.1 &&
		byVec[vectors.Hybrid].Mean < byVec[vectors.MergedSignals].Mean &&
		byVec[vectors.MergedSignals].Mean < byVec[vectors.AM].Mean) {
		t.Error("Table 1 mean ordering violated")
	}
}

// TestFigure3Shape: most users leave only one or two distinct Hybrid
// fingerprints (the paper's bar plot: 938 + 524 of 2093 in the first two
// bins).
func TestFigure3Shape(t *testing.T) {
	ds := mainDataset(t)
	h := ds.Figure3(vectors.Hybrid)
	n := len(ds.Devices)
	oneOrTwo := h.Bins[1] + h.Bins[2]
	t.Logf("Figure3 Hybrid: %d users with 1 fp, %d with 2, %d with 1-2 of %d total",
		h.Bins[1], h.Bins[2], oneOrTwo, n)
	if frac := float64(h.Bins[1]) / float64(n); frac < 0.30 || frac > 0.62 {
		t.Errorf("users with exactly 1 fingerprint = %.2f, want ≈ 0.45 (938/2093)", frac)
	}
	if frac := float64(oneOrTwo) / float64(n); frac < 0.55 {
		t.Errorf("users with ≤ 2 fingerprints = %.2f, want ≥ 0.55", frac)
	}
	// CDF ends at 1.
	_, cdf := h.CDF()
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-12 {
		t.Error("CDF does not reach 1")
	}
}

// TestFigure5Agreement: collation yields near-perfect cluster agreement for
// s ≥ 2 (paper: ≥ 0.986 at s=4, ≥ 0.997 at s=15).
func TestFigure5Agreement(t *testing.T) {
	ds := mainDataset(t)
	points, err := ds.AgreementScores([]int{1, 2, 4, 10, 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		t.Logf("Fig5 %-14s s=%2d meanAMI=%.4f (%d pairs)", p.Vector, p.S, p.MeanAMI, p.Pairs)
		switch {
		case p.S >= 4:
			if p.MeanAMI < 0.97 {
				t.Errorf("%v s=%d: mean AMI %.4f < 0.97", p.Vector, p.S, p.MeanAMI)
			}
		case p.S >= 2:
			if p.MeanAMI < 0.93 {
				t.Errorf("%v s=%d: mean AMI %.4f < 0.93", p.Vector, p.S, p.MeanAMI)
			}
		default: // s = 1 may degrade, but must stay high overall
			if p.MeanAMI < 0.75 {
				t.Errorf("%v s=1: mean AMI %.4f < 0.75", p.Vector, p.MeanAMI)
			}
		}
	}
}

// TestTable6MatchScores: returning visitors resolve to their original
// cluster ≥ 98% of the time even from 3 iterations (paper: worst 0.9899).
func TestTable6MatchScores(t *testing.T) {
	ds := mainDataset(t)
	rows := ds.MatchScores([]int{3, 10, 15})
	for _, r := range rows {
		t.Logf("Table6 %-14s s=%2d score=%.4f (%d trials)", r.Vector, r.S, r.Score, r.Trials)
		if r.Score < 0.98 {
			t.Errorf("%v s=%d match score %.4f < 0.98", r.Vector, r.S, r.Score)
		}
		if r.Score > 1 {
			t.Errorf("%v s=%d match score %.4f > 1", r.Vector, r.S, r.Score)
		}
	}
	// DC matches perfectly at any s.
	for _, r := range rows {
		if r.Vector == vectors.DC && r.Score != 1.0 {
			t.Errorf("DC s=%d match score %.4f, want 1.0", r.S, r.Score)
		}
	}
}

// TestTable2Diversity reproduces the audio-diversity table's shape: DC the
// least diverse, the FFT-family close together and above DC, Combined the
// largest, with distinct/unique counts near the paper's.
func TestTable2Diversity(t *testing.T) {
	ds := mainDataset(t)
	rows := ds.Table2()
	byName := map[string]DiversityRow{}
	for _, r := range rows {
		byName[r.Name] = r
		t.Logf("Table2 %-14s distinct=%3d unique=%3d entropy=%.3f norm=%.3f",
			r.Name, r.Distinct, r.Unique, r.EntropyBits, r.Normalized)
	}
	dc := byName["DC"]
	fft := byName["FFT"]
	hybrid := byName["Hybrid"]
	combined := byName["Combined"]

	if dc.Distinct < 40 || dc.Distinct > 80 {
		t.Errorf("DC distinct = %d, want ≈ 59", dc.Distinct)
	}
	if fft.Distinct <= dc.Distinct {
		t.Errorf("FFT distinct %d ≤ DC distinct %d — FFT must be more diverse", fft.Distinct, dc.Distinct)
	}
	if hybrid.Distinct < fft.Distinct {
		t.Errorf("Hybrid distinct %d < FFT distinct %d — joint must dominate", hybrid.Distinct, fft.Distinct)
	}
	if combined.Distinct < hybrid.Distinct {
		t.Errorf("Combined distinct %d < Hybrid %d", combined.Distinct, hybrid.Distinct)
	}
	if combined.Distinct < 70 || combined.Distinct > 150 {
		t.Errorf("Combined distinct = %d, want ≈ 95", combined.Distinct)
	}
	if dc.EntropyBits >= fft.EntropyBits {
		t.Errorf("DC entropy %.3f ≥ FFT entropy %.3f", dc.EntropyBits, fft.EntropyBits)
	}
	// FFT-family entropies cluster together (paper: all within ~0.2 bits).
	for _, name := range []string{"Hybrid", "Custom Signal", "Merged Signals", "AM", "FM"} {
		if d := math.Abs(byName[name].EntropyBits - fft.EntropyBits); d > 0.8 {
			t.Errorf("%s entropy deviates from FFT by %.2f bits", name, d)
		}
	}
}

// TestTable3VsTable2: audio is far less diverse than Canvas, Fonts and UA
// (the paper's headline comparison).
func TestTable3VsTable2(t *testing.T) {
	ds := mainDataset(t)
	t3 := ds.Table3()
	combined := diversity.Summarize(ds.CombinedLabels())
	for _, r := range t3 {
		t.Logf("Table3 %-10s distinct=%3d unique=%3d entropy=%.3f norm=%.3f",
			r.Name, r.Distinct, r.Unique, r.EntropyBits, r.Normalized)
		if r.EntropyBits <= combined.EntropyBits {
			t.Errorf("%s entropy %.3f ≤ combined audio %.3f — audio must be least diverse",
				r.Name, r.EntropyBits, combined.EntropyBits)
		}
		if r.Distinct <= combined.Distinct {
			t.Errorf("%s distinct %d ≤ combined audio %d", r.Name, r.Distinct, combined.Distinct)
		}
	}
}

// TestUASpan reproduces §4's W3C refutation: a large fraction of multi-user
// UA strings span several FFT-cluster fingerprints (paper: 90 of 143 UAs,
// covering ~1610 of 1950 users; one UA with 10 clusters).
func TestUASpan(t *testing.T) {
	ds := mainDataset(t)
	res := ds.UASpan(vectors.MergedSignals)
	t.Logf("UASpan: %d multi-user UAs (%d users); %d spanning (%d users); max clusters/UA=%d; ≥5 clusters: %d",
		res.MultiUserUAs, res.MultiUserUAUsers, res.SpanningUAs, res.SpanningUAUsers,
		res.MaxClustersPerUA, res.UAsWith5Plus)
	if res.MultiUserUAs < 80 {
		t.Errorf("multi-user UAs = %d, want ≥ 80 (paper: 143)", res.MultiUserUAs)
	}
	if frac := float64(res.SpanningUAs) / float64(res.MultiUserUAs); frac < 0.35 {
		t.Errorf("spanning UA fraction = %.2f, want ≥ 0.35 (paper: 90/143 ≈ 0.63)", frac)
	}
	if res.MaxClustersPerUA < 4 {
		t.Errorf("max clusters per UA = %d, want ≥ 4 (paper: 10)", res.MaxClustersPerUA)
	}
	// The same must hold for every FFT-based vector (paper footnote 3).
	for _, v := range []vectors.ID{vectors.FFT, vectors.Hybrid} {
		if r := ds.UASpan(v); r.SpanningUAs == 0 {
			t.Errorf("%v: no spanning UAs", v)
		}
	}
}

// TestAdditiveValue reproduces §4's additive-value result: appending the
// combined audio fingerprint raises Canvas and UA normalized entropy by a
// meaningful margin (paper: +9.6% and +9.7%).
func TestAdditiveValue(t *testing.T) {
	ds := mainDataset(t)
	canvas := ds.AdditiveValue("Canvas", ds.Canvas)
	ua := ds.AdditiveValue("User-Agent", ds.UA)
	for _, r := range []AdditiveResult{canvas, ua} {
		t.Logf("Additive %-10s base=%.3f with-audio=%.3f (+%.1f%%)",
			r.Name, r.Base.EntropyBits, r.WithAudio.EntropyBits, 100*r.NormIncrease)
		if r.NormIncrease < 0.03 {
			t.Errorf("%s: audio adds only %.1f%%, want ≥ 3%% (paper ≈ 9.6%%)", r.Name, 100*r.NormIncrease)
		}
		if r.WithAudio.EntropyBits < r.Base.EntropyBits {
			t.Errorf("%s: entropy decreased when adding audio", r.Name)
		}
	}
}

// TestFigure9CrossVectorAMI: the FFT-family vectors agree with one another
// far more than DC agrees with them.
func TestFigure9CrossVectorAMI(t *testing.T) {
	ds := mainDataset(t)
	m, err := ds.PairwiseVectorAMI()
	if err != nil {
		t.Fatal(err)
	}
	idx := map[vectors.ID]int{}
	for i, v := range vectors.All {
		idx[v] = i
	}
	var fftPairs, dcPairs []float64
	for i := 1; i < len(vectors.All); i++ {
		dcPairs = append(dcPairs, m[0][i])
		for j := i + 1; j < len(vectors.All); j++ {
			fftPairs = append(fftPairs, m[i][j])
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	fftMean, dcMean := mean(fftPairs), mean(dcPairs)
	t.Logf("Fig9: FFT-family mean AMI=%.3f, DC-vs-family mean AMI=%.3f", fftMean, dcMean)
	if fftMean < 0.80 {
		t.Errorf("FFT-family mean AMI = %.3f, want ≥ 0.80", fftMean)
	}
	if dcMean >= fftMean {
		t.Errorf("DC agrees with the family (%.3f) as much as it agrees internally (%.3f)", dcMean, fftMean)
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d] = %g", i, m[i][i])
		}
	}
}

// TestSubsetRanking reproduces §5's robustness check: dividing users into 4
// disjoint subsets preserves the diversity ranking's key structure — the
// non-audio vectors always dominate every audio vector, and DC is always
// the weakest.
func TestSubsetRanking(t *testing.T) {
	ds := mainDataset(t)
	res := ds.SubsetRanking(4)
	for i, r := range res.Rankings {
		t.Logf("subset %d ranking: %v", i, r)
	}
	audio := map[string]bool{}
	for _, v := range vectors.All {
		audio[v.String()] = true
	}
	for i, rank := range res.Rankings {
		// First three places: the non-audio surfaces.
		for p := 0; p < 3; p++ {
			if audio[rank[p]] {
				t.Errorf("subset %d: audio vector %q ranked %d, above a non-audio surface", i, rank[p], p)
			}
		}
		if rank[len(rank)-1] != "DC" {
			t.Errorf("subset %d: weakest vector is %q, want DC", i, rank[len(rank)-1])
		}
	}
}

// TestNaiveAblation: the graph-collation match scores must dominate the
// naive exact-hash baseline for every fickle vector and tie it on DC — the
// quantitative case for the paper's §3.2 method.
func TestNaiveAblation(t *testing.T) {
	ds := mainDataset(t)
	byVec := func(rows []MatchScoreRow) map[vectors.ID]float64 {
		m := map[vectors.ID]float64{}
		for _, r := range rows {
			m[r.Vector] = r.Score
		}
		return m
	}
	graph := byVec(ds.MatchScores([]int{3}))
	naive := byVec(ds.NaiveMatchScores([]int{3}))
	for _, v := range vectors.All {
		t.Logf("ablation s=3 %-14s graph=%.4f naive=%.4f", v, graph[v], naive[v])
	}
	if naive[vectors.DC] != 1.0 || graph[vectors.DC] != 1.0 {
		t.Errorf("DC should be perfect under both schemes")
	}
	for _, v := range []vectors.ID{vectors.AM, vectors.FM, vectors.MergedSignals} {
		if graph[v] < naive[v]+0.02 {
			t.Errorf("%v: graph %.4f does not clearly beat naive %.4f", v, graph[v], naive[v])
		}
	}
}

// TestFootnote2DistributionsSimilar: the paper's footnote 2 says the
// distinct-fingerprint distributions of the five other FFT-based vectors
// "are very similar" to Hybrid's. Check the non-modulated family members
// share Hybrid's shape (majority in bin 1, monotone-ish decay), and that
// even AM/FM keep the L-shape with a heavier tail.
func TestFootnote2DistributionsSimilar(t *testing.T) {
	ds := mainDataset(t)
	n := float64(len(ds.Devices))
	hyb := ds.Figure3(vectors.Hybrid)
	hybOne := float64(hyb.Bins[1]) / n
	for _, v := range []vectors.ID{vectors.FFT, vectors.CustomSignal} {
		h := ds.Figure3(v)
		one := float64(h.Bins[1]) / n
		if diff := one - hybOne; diff > 0.12 || diff < -0.12 {
			t.Errorf("%v: P(1 fingerprint) = %.3f vs Hybrid %.3f — footnote 2 violated", v, one, hybOne)
		}
	}
	for _, v := range vectors.FFTBased {
		h := ds.Figure3(v)
		if h.Bins[1] < h.Bins[3] {
			t.Errorf("%v: bin1 %d < bin3 %d — not L-shaped", v, h.Bins[1], h.Bins[3])
		}
	}
}
