package study

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism resolves the dataset's worker-count knob: Parallelism when
// positive, GOMAXPROCS otherwise.
func (ds *Dataset) parallelism() int {
	if ds.Parallelism > 0 {
		return ds.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runAll invokes fn(i) for every i in [0, n) from at most `workers`
// goroutines (0 = GOMAXPROCS) and returns the first error observed. Work
// is claimed from an atomic counter rather than fed through a channel, so
// there is no producer to deadlock: when a worker fails, the remaining
// workers stop claiming new indices and runAll returns. (The previous
// channel-fed pool blocked forever in study.Run if every worker exited
// early on error while the producer still held unqueued jobs.)
func runAll(n, workers int, fn func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
			mTasks.Inc()
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		first   error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mWorkersActive.Inc()
			defer mWorkersActive.Dec()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { first = err })
					failed.Store(true)
					return
				}
				mTasks.Inc()
			}
		}()
	}
	wg.Wait()
	return first
}

// forEach is runAll without error plumbing, for sweeps whose work items
// cannot fail.
func forEach(n, workers int, fn func(int)) {
	runAll(n, workers, func(i int) error {
		fn(i)
		return nil
	})
}
