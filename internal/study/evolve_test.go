package study

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/population"
	"repro/internal/vectors"
)

// TestBuildEvolvedDeterminism: same seed ⇒ byte-identical dataset,
// regardless of worker parallelism; a different seed diverges.
func TestBuildEvolvedDeterminism(t *testing.T) {
	cfg := EvolvedConfig{
		LongitudinalConfig: LongitudinalConfig{
			Seed: 42, Users: 24, Epochs: 4, SamplesPerEpoch: 2,
		},
		Vectors: []vectors.ID{vectors.DC, vectors.FFT, vectors.Hybrid},
		Churn:   population.DefaultChurn(),
	}
	a, err := BuildEvolved(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEvolved(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two builds of the same config differ structurally")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("two builds of the same config differ byte-wise")
	}

	par := cfg
	par.Parallelism = 8
	c, err := BuildEvolved(par)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() != a.Fingerprint() {
		t.Error("Parallelism=8 build differs from the serial build")
	}

	other := cfg
	other.Seed = 43
	d, err := BuildEvolved(other)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint() == a.Fingerprint() {
		t.Error("different seeds produced identical datasets")
	}
}

// TestBuildEvolvedChurnCalibration: over a large population × many epochs,
// the observed per-step upgrade frequencies must land within tolerance of
// the configured churn rates, and stack shifts must show up as changed
// observation hashes for the shifted users.
func TestBuildEvolvedChurnCalibration(t *testing.T) {
	churn := population.ChurnModel{BrowserUpgradeProb: 0.15, OSUpgradeProb: 0.04}
	cfg := EvolvedConfig{
		LongitudinalConfig: LongitudinalConfig{
			Seed: 7, Users: 600, Epochs: 9, SamplesPerEpoch: 1,
		},
		Churn:       churn,
		Parallelism: 4,
	}
	ev, err := BuildEvolved(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := float64(cfg.Users * (cfg.Epochs - 1)) // epoch 0 has no churn
	browserRate := float64(ev.Upgrades) / steps
	if math.Abs(browserRate-churn.BrowserUpgradeProb) > 0.02 {
		t.Errorf("browser upgrade rate = %.4f, configured %.2f", browserRate, churn.BrowserUpgradeProb)
	}
	osRate := float64(ev.OSUpgrades) / steps
	if osRate > churn.OSUpgradeProb+0.015 || osRate < churn.OSUpgradeProb/3 {
		t.Errorf("os upgrade rate = %.4f, configured %.2f", osRate, churn.OSUpgradeProb)
	}
	if ev.FingerprintShifts == 0 {
		t.Fatal("no fingerprint shifts; churn never crossed a DSP revision cut")
	}
	if ev.FingerprintShifts >= ev.Upgrades+ev.OSUpgrades {
		t.Errorf("shifts (%d) >= upgrades (%d); most upgrades must keep the stack",
			ev.FingerprintShifts, ev.Upgrades+ev.OSUpgrades)
	}
	// Every epoch-0 event must be zero (enrollment), and a shifted user's
	// hashes must actually change at the shift epoch.
	for u, evt := range ev.Events[0] {
		if evt != (population.ChurnEvent{}) {
			t.Fatalf("user %d has a churn event at enrollment epoch: %+v", u, evt)
		}
	}
	obs := ev.Obs[vectors.Hybrid]
	checked := 0
	for e := 1; e < cfg.Epochs && checked < 10; e++ {
		for u, evt := range ev.Events[e] {
			if evt.StackShift && obs[e][u][0] == obs[e-1][u][0] {
				t.Errorf("user %d shifted stack at epoch %d but its hash did not change", u, e)
			}
			if evt.StackShift {
				checked++
			}
		}
	}
	if checked == 0 {
		t.Error("found no shifted user to check hash movement on")
	}
}

// TestBuildEvolvedValidation: bad configs are rejected.
func TestBuildEvolvedValidation(t *testing.T) {
	if _, err := BuildEvolved(EvolvedConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := BuildEvolved(EvolvedConfig{
		LongitudinalConfig: LongitudinalConfig{Users: 5},
	}); err == nil {
		t.Error("zero epochs accepted")
	}
}
