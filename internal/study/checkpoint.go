package study

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
	"repro/internal/vectors"
)

var mResumedUsers = obs.Default.Counter("study_checkpoint_resumed_users_total",
	"Participants restored from a checkpoint instead of re-rendered.", nil)

// checkpointHeader pins the run configuration a checkpoint belongs to. A
// file whose header does not match the current Config is discarded rather
// than resumed — mixing results from two different configurations would
// silently corrupt the dataset.
type checkpointHeader struct {
	Kind       string `json:"checkpoint"`
	Seed       int64  `json:"seed"`
	Users      int    `json:"users"`
	Iterations int    `json:"iterations"`
	IDPrefix   string `json:"id_prefix"`
	Era        string `json:"era"`
}

func headerFor(cfg Config) checkpointHeader {
	return checkpointHeader{
		Kind:       "study-run-v1",
		Seed:       cfg.Seed,
		Users:      cfg.Users,
		Iterations: cfg.Iterations,
		IDPrefix:   cfg.IDPrefix,
		Era:        cfg.Era,
	}
}

// checkpointEntry records one fully rendered participant: every vector's
// hash sequence, keyed by vector name.
type checkpointEntry struct {
	User int                 `json:"user"`
	ID   string              `json:"id"`
	Obs  map[string][]string `json:"obs"`
}

// checkpointWriter appends participant entries to the checkpoint file,
// one JSON line at a time, flushed per entry so a killed process loses at
// most the entry being written.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

func (cw *checkpointWriter) append(e checkpointEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if _, err := cw.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return cw.w.Flush()
}

func (cw *checkpointWriter) close() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := cw.w.Flush(); err != nil {
		cw.f.Close()
		return err
	}
	return cw.f.Close()
}

// openCheckpoint loads any resumable entries from path and returns a
// writer positioned to append new ones. users is the expected participant
// ID list: an entry is restored only when its index and ID line up, its
// vector set is complete, and every vector carries exactly `iterations`
// hashes. A header mismatch (different seed, population, or era) or an
// unreadable header starts the file over. Unparsable lines — the torn tail
// a mid-write kill leaves behind — end the scan; everything before them is
// kept.
func openCheckpoint(path string, cfg Config, users []string) (*checkpointWriter, []checkpointEntry, error) {
	want := headerFor(cfg)
	var entries []checkpointEntry
	resume := false

	if raw, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 0, 1024*1024), 16*1024*1024)
		if sc.Scan() {
			var hdr checkpointHeader
			if json.Unmarshal(sc.Bytes(), &hdr) == nil && hdr == want {
				resume = true
				for sc.Scan() {
					var e checkpointEntry
					if json.Unmarshal(sc.Bytes(), &e) != nil {
						break // torn tail: trust nothing at or after it
					}
					if validEntry(e, cfg.Iterations, users) {
						entries = append(entries, e)
					}
				}
			}
		}
	}

	flags := os.O_WRONLY | os.O_CREATE
	if resume {
		// Rewrite the file from the surviving entries so a torn tail does
		// not linger in front of new appends.
		flags |= os.O_TRUNC
	} else {
		flags |= os.O_TRUNC
		entries = nil
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("study: open checkpoint: %w", err)
	}
	cw := &checkpointWriter{f: f, w: bufio.NewWriter(f)}
	hb, _ := json.Marshal(want)
	if _, err := cw.w.Write(append(hb, '\n')); err != nil {
		f.Close()
		return nil, nil, err
	}
	for _, e := range entries {
		if err := cw.append(e); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if err := cw.w.Flush(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return cw, entries, nil
}

// validEntry reports whether a checkpoint entry can be trusted for this
// run: index/ID aligned with the sampled population and a complete hash
// matrix.
func validEntry(e checkpointEntry, iterations int, users []string) bool {
	if e.User < 0 || e.User >= len(users) || users[e.User] != e.ID {
		return false
	}
	if len(e.Obs) != len(vectors.All) {
		return false
	}
	for _, v := range vectors.All {
		hashes, ok := e.Obs[v.String()]
		if !ok || len(hashes) != iterations {
			return false
		}
		for _, h := range hashes {
			if h == "" {
				return false
			}
		}
	}
	return true
}

// entryFor snapshots user idx's rendered observations for the checkpoint.
func entryFor(ds *Dataset, idx int) checkpointEntry {
	obs := make(map[string][]string, len(vectors.All))
	for _, v := range vectors.All {
		hashes := make([]string, ds.Iterations)
		copy(hashes, ds.Obs[v][idx])
		obs[v.String()] = hashes
	}
	return checkpointEntry{User: idx, ID: ds.Users[idx], Obs: obs}
}

// restore copies a validated checkpoint entry into the dataset.
func restore(ds *Dataset, e checkpointEntry) {
	for _, v := range vectors.All {
		copy(ds.Obs[v][e.User], e.Obs[v.String()])
	}
}
