package study

import (
	"math"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/vectors"
)

// TestRecordsRoundTrip: export → import preserves every analysis input.
func TestRecordsRoundTrip(t *testing.T) {
	ds, err := Run(Config{Seed: 13, Users: 60, Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs := ds.ToRecords(time.Unix(1616284800, 0).UTC())
	wantRecs := 60 * 8 * len(vectors.All)
	if len(recs) != wantRecs {
		t.Fatalf("exported %d records, want %d", len(recs), wantRecs)
	}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("exported record invalid: %v", err)
		}
	}

	back, err := FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(ds.Users) || back.Iterations != ds.Iterations {
		t.Fatalf("loaded %d users / %d iterations", len(back.Users), back.Iterations)
	}
	for i, u := range ds.Users {
		if back.Users[i] != u {
			t.Fatalf("user order differs at %d", i)
		}
		if back.UA[i] != ds.UA[i] || back.Canvas[i] != ds.Canvas[i] ||
			back.Fonts[i] != ds.Fonts[i] || back.MathJS[i] != ds.MathJS[i] ||
			back.Platforms[i] != ds.Platforms[i] {
			t.Fatalf("surfaces differ for user %s", u)
		}
	}
	for _, v := range vectors.All {
		for ui := range ds.Users {
			for it := 0; it < ds.Iterations; it++ {
				if ds.Obs[v][ui][it] != back.Obs[v][ui][it] {
					t.Fatalf("%v user %d iter %d differs", v, ui, it)
				}
			}
		}
	}

	// Analyses agree on both datasets (entropy compared with a float
	// tolerance: map iteration order permutes the summation).
	a := ds.Table2()
	b := back.Table2()
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Distinct != b[i].Distinct ||
			a[i].Unique != b[i].Unique ||
			math.Abs(a[i].EntropyBits-b[i].EntropyBits) > 1e-9 {
			t.Errorf("Table2 row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRecordsRoundTripViaStore: the full path through the NDJSON store.
func TestRecordsRoundTripViaStore(t *testing.T) {
	ds, err := Run(Config{Seed: 14, Users: 20, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.Open(t.TempDir()+"/fp.ndjson", storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(ds.ToRecords(time.Now().UTC())...); err != nil {
		t.Fatal(err)
	}
	recs, err := st.All()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	at := ds.Table1()
	bt := back.Table1()
	for i := range at {
		if at[i] != bt[i] {
			t.Errorf("Table1 row %d differs after store round trip", i)
		}
	}
}

func TestFromRecordsValidation(t *testing.T) {
	if _, err := FromRecords(nil); err == nil {
		t.Error("empty records accepted")
	}
	// A user missing a whole vector is rejected.
	recs := []storage.Record{
		{UserID: "u1", Vector: "DC", Iteration: 0, Hash: "aa", ReceivedAt: time.Now()},
	}
	if _, err := FromRecords(recs); err == nil {
		t.Error("records missing vectors accepted")
	}
}

// TestFromRecordsToleratesSparseIterations: ragged per-user coverage is
// compacted to the common minimum.
func TestFromRecordsToleratesSparseIterations(t *testing.T) {
	var recs []storage.Record
	add := func(user, vec string, it int, h string) {
		recs = append(recs, storage.Record{
			UserID: user, Vector: vec, Iteration: it, Hash: h,
			ReceivedAt: time.Now(),
		})
	}
	for _, v := range vectors.All {
		// u1 has 3 iterations; u2 only 2 (and with a gap).
		add("u1", v.String(), 0, "a0")
		add("u1", v.String(), 1, "a1")
		add("u1", v.String(), 2, "a2")
		add("u2", v.String(), 0, "b0")
		add("u2", v.String(), 5, "b5")
	}
	ds, err := FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2 (common minimum)", ds.Iterations)
	}
	if ds.Obs[vectors.DC][1][1] != "b5" {
		t.Errorf("gap not compacted: %q", ds.Obs[vectors.DC][1][1])
	}
}

// TestFromRecordsKeepAll: the keep-all load mode retains every observation
// in arrival order (duplicate iterations append, not overwrite), tolerates
// users missing whole vectors, and leaves rows ragged.
func TestFromRecordsKeepAll(t *testing.T) {
	var recs []storage.Record
	add := func(user, vec string, it int, h string) {
		recs = append(recs, storage.Record{
			UserID: user, Vector: vec, Iteration: it, Hash: h,
			ReceivedAt: time.Now(),
		})
	}
	add("u1", "DC", 0, "a0")
	add("u2", "FFT", 0, "f0")
	add("u1", "DC", 0, "a0b") // duplicate iteration: appended, not replaced
	add("u1", "DC", 2, "a2")

	ds, err := FromRecordsOpts(recs, LoadOptions{KeepAllObservations: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Obs[vectors.DC][0]; len(got) != 3 || got[0] != "a0" || got[1] != "a0b" || got[2] != "a2" {
		t.Errorf("u1 DC row = %v, want [a0 a0b a2]", got)
	}
	if got := ds.Obs[vectors.DC][1]; len(got) != 0 {
		t.Errorf("u2 DC row = %v, want empty (missing vector tolerated)", got)
	}
	if got := ds.Obs[vectors.FFT][1]; len(got) != 1 || got[0] != "f0" {
		t.Errorf("u2 FFT row = %v, want [f0]", got)
	}
	if ds.Iterations != 3 {
		t.Errorf("Iterations = %d, want 3 (max row length)", ds.Iterations)
	}
	// Users missing a vector collate as singletons rather than erroring.
	if got := ds.Labels(vectors.DC); len(got) != 2 || got[0] == got[1] {
		t.Errorf("DC labels = %v, want two distinct clusters", got)
	}
	// Default mode still rejects the same records (u2 has no DC coverage).
	if _, err := FromRecords(recs); err == nil {
		t.Error("compacting mode accepted records with a user missing a vector")
	}
}
