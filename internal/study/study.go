// Package study orchestrates the paper's measurement methodology end to
// end: it runs the seven fingerprinting vectors k times against every
// (simulated) participant, collates elementary fingerprints with the
// bipartite-graph method of §3.2, and implements every analysis in the
// evaluation — stability (Table 1, Fig. 3), cluster agreement (Fig. 5),
// match scores (Table 6), diversity (Tables 2–3), the UA/W3C analysis and
// additive-value computation (§4), the Math-JS follow-up (Tables 4–5),
// cross-vector agreement (Fig. 9) and the §5 subset-ranking robustness
// check.
package study

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/collate"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/vectors"
)

// Config controls a simulated study run.
type Config struct {
	// Seed drives population sampling and per-iteration jitter draws.
	Seed int64
	// Users is the participant count (paper: 2093 main, 528 follow-up).
	Users int
	// Iterations is the per-vector repetition count k (paper: 30).
	Iterations int
	// Mix selects the demographic mix; zero value = main-study mix.
	Mix population.Mix
	// Jitter models load-induced capture offsets; nil = DefaultJitter.
	Jitter *platform.JitterModel
	// Parallelism bounds worker goroutines; 0 = GOMAXPROCS.
	Parallelism int
	// IDPrefix prefixes participant IDs.
	IDPrefix string
	// Era selects the audio-stack generation (see population.Config.Era).
	Era string
	// Progress, when non-nil, is invoked after each participant finishes
	// rendering, with the number completed so far and the total. It is
	// called concurrently from worker goroutines and must be goroutine-
	// safe.
	Progress func(done, total int)
	// CheckpointPath, when non-empty, makes RunContext record each
	// participant's rendered observations to this file as they complete,
	// and resume from it on the next run with the same Config: already-
	// rendered participants are restored instead of re-rendered, and the
	// dataset comes out bit-identical to an uninterrupted run. A file
	// written under a different Config is ignored and overwritten.
	CheckpointPath string
	// SpanSink, when non-nil, receives the finished "study.run" span tree
	// when RunContext completes — the simulation's counterpart of the
	// server's telemetry export (obs.Exporter satisfies the interface).
	SpanSink obs.SpanExporter
	// RenderCache, when non-nil, memoizes fingerprint renders across runs:
	// passing one cache to several studies (as fpstudy does for the main
	// and follow-up populations) shares renders between them, and the
	// caller can read its Stats for progress reporting. Nil means a fresh
	// private cache per run. Results are bit-identical either way.
	RenderCache *vectors.Cache
	// ShadowAudit, when non-nil, attaches the divergence auditor to the run's
	// render cache: a deterministic sample of cache-miss renders is re-rendered
	// through the block and reference engines in lockstep, and any bit
	// divergence lands in the auditor's flight-record ring and on
	// vectors_render_divergence_total.
	ShadowAudit *vectors.ShadowAuditor
}

// Dataset is the raw outcome of a study: the participants, their non-audio
// fingerprinting surfaces, and every elementary audio fingerprint each
// user's browser emitted. Datasets come from two places — simulated runs
// (Run) and loaded collection exports (FromRecords) — and every analysis
// works identically on both.
type Dataset struct {
	// Devices holds the simulated participants, in stable order. Nil for
	// datasets loaded from a collection export.
	Devices []*platform.Device
	// Users holds the participant IDs, in stable order.
	Users []string
	// Iterations is the per-vector repetition count.
	Iterations int
	// Obs maps vector → user index → iteration → elementary fingerprint
	// hash.
	Obs map[vectors.ID][][]string
	// UA, Canvas, Fonts, MathJS and Platforms are per-user surface values
	// aligned with Users.
	UA        []string
	Canvas    []string
	Fonts     []string
	MathJS    []string
	Platforms []string
	// Parallelism bounds the worker goroutines the analysis sweeps
	// (AgreementScores, MatchScores, PairwiseVectorAMI, SubsetRanking) may
	// use; 0 = GOMAXPROCS, 1 = serial. Results are bit-identical across
	// settings — only wall-clock changes.
	Parallelism int

	// tracer is the span under which analysis stages record their timing
	// (SetTracer; nil disables tracing).
	tracer atomic.Pointer[obs.Span]

	// mu guards the lazily built caches below.
	mu sync.Mutex
	// fullGraphs caches the all-iterations collation graph per vector.
	fullGraphs map[vectors.ID]*collate.Graph
	// idx interns user/fingerprint IDs (built eagerly by Run/FromRecords,
	// lazily otherwise); denseByVec caches per-vector full-graph labelings
	// in interned form.
	idx        *Index
	denseByVec map[vectors.ID]*denseInfo
}

// UserIDs returns the participant IDs in dataset order.
func (ds *Dataset) UserIDs() []string { return ds.Users }

// Run simulates the full study: every user runs every vector Iterations
// times. Rendering is memoized per (audio stack, vector, capture offset), so
// cost scales with platform diversity rather than population size. The
// result is deterministic for a given Config, independent of Parallelism.
func Run(cfg Config) (*Dataset, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with pipeline tracing: when ctx carries an obs span, a
// "study.run" child records the population/render/intern stages. Tracing
// never affects the dataset — results stay bit-identical to Run.
func RunContext(ctx context.Context, cfg Config) (*Dataset, error) {
	if cfg.Users <= 0 || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("study: Users and Iterations must be positive (got %d, %d)",
			cfg.Users, cfg.Iterations)
	}
	ctx, runSpan := obsStart(ctx, "study.run")
	if runSpan == nil && cfg.SpanSink != nil {
		// A sink without an ambient trace still deserves spans: root one.
		ctx, runSpan = obs.Start(ctx, "study.run")
	}
	runSpan.SetAttr("users", cfg.Users)
	runSpan.SetAttr("iterations", cfg.Iterations)
	defer func() {
		runSpan.End()
		if cfg.SpanSink != nil && runSpan != nil {
			cfg.SpanSink.ExportSpan(runSpan)
		}
	}()

	jitter := cfg.Jitter
	if jitter == nil {
		jitter = platform.DefaultJitter()
	}
	_, popSpan := obsStart(ctx, "population")
	devs := population.Sample(population.Config{
		Seed: cfg.Seed, N: cfg.Users, Mix: cfg.Mix, IDPrefix: cfg.IDPrefix,
		Era: cfg.Era,
	})
	popSpan.End()

	ds := &Dataset{
		Devices:    devs,
		Users:      make([]string, len(devs)),
		Iterations: cfg.Iterations,
		Obs:        make(map[vectors.ID][][]string, len(vectors.All)),
		UA:         make([]string, len(devs)),
		Canvas:     make([]string, len(devs)),
		Fonts:      make([]string, len(devs)),
		MathJS:     make([]string, len(devs)),
		Platforms:  make([]string, len(devs)),
		fullGraphs: make(map[vectors.ID]*collate.Graph),
	}
	for i, d := range devs {
		ds.Users[i] = d.ID
		ds.UA[i] = d.UserAgent()
		ds.Canvas[i] = d.CanvasFingerprint()
		ds.Fonts[i] = d.FontsFingerprint()
		ds.MathJS[i] = d.MathJSFingerprint()
		ds.Platforms[i] = d.Platform()
	}
	for _, v := range vectors.All {
		obs := make([][]string, len(devs))
		for i := range obs {
			obs[i] = make([]string, cfg.Iterations)
		}
		ds.Obs[v] = obs
	}

	// Pre-derive per-user jitter seeds so results don't depend on worker
	// scheduling.
	seedRng := rand.New(rand.NewSource(cfg.Seed ^ 0x6a75747465726d6c))
	userSeeds := make([]int64, len(devs))
	for i := range userSeeds {
		userSeeds[i] = seedRng.Int63()
	}

	// Checkpoint/resume: restore participants a previous (interrupted) run
	// already rendered, and record new ones as they complete. Because each
	// user's jitter seed is pre-derived, skipping restored users leaves
	// everyone else's randomness untouched — the resumed dataset is
	// bit-identical to an uninterrupted run.
	resumed := make([]bool, len(devs))
	var ckpt *checkpointWriter
	if cfg.CheckpointPath != "" {
		cw, entries, err := openCheckpoint(cfg.CheckpointPath, cfg, ds.Users)
		if err != nil {
			return nil, err
		}
		ckpt = cw
		defer ckpt.close()
		for _, e := range entries {
			restore(ds, e)
			resumed[e.User] = true
			mResumedUsers.Inc()
		}
		runSpan.SetAttr("resumed_users", len(entries))
	}

	_, renderSpan := obsStart(ctx, "render")
	var done atomic.Int64
	cache := cfg.RenderCache
	if cache == nil {
		cache = vectors.NewCache()
	}
	if cfg.ShadowAudit != nil {
		cache.SetShadow(cfg.ShadowAudit)
	}
	if err := runAll(len(devs), cfg.Parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !resumed[i] {
			if err := runUser(ds, cache, jitter, i, userSeeds[i]); err != nil {
				return err
			}
			if ckpt != nil {
				if err := ckpt.append(entryFor(ds, i)); err != nil {
					return fmt.Errorf("study: checkpoint user %s: %w", ds.Users[i], err)
				}
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(int(done.Add(1)), len(devs))
		}
		return nil
	}); err != nil {
		renderSpan.End()
		return nil, err
	}
	cst := cache.Stats()
	renderSpan.SetAttr("distinct_renders", cst.Entries)
	renderSpan.SetAttr("cache_hits", int(cst.Hits))
	renderSpan.SetAttr("cache_misses", int(cst.Misses))
	renderSpan.SetAttr("cache_singleflight_waits", int(cst.Waits))
	renderSpan.End()

	ds.Parallelism = cfg.Parallelism
	_, indexSpan := obsStart(ctx, "intern-index")
	ds.idx = buildIndex(ds.Obs)
	indexSpan.End()
	return ds, nil
}

// runUser executes all iterations of all vectors for one participant.
func runUser(ds *Dataset, cache *vectors.Cache, jitter *platform.JitterModel, idx int, seed int64) error {
	d := ds.Devices[idx]
	runner := vectors.NewRunner(d.AudioTraits(), d.SampleRate)
	stack := d.AudioStackKey()
	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < ds.Iterations; it++ {
		for _, v := range vectors.All {
			off := jitter.Offset(rng, d.Load, v)
			fp, err := cache.Run(stack, runner, v, off)
			if err != nil {
				return fmt.Errorf("user %s vector %v: %w", d.ID, v, err)
			}
			ds.Obs[v][idx][it] = fp.Hash
		}
	}
	return nil
}

// Graph builds the collation graph of vector v restricted to the given
// iteration indices (nil = all iterations).
func (ds *Dataset) Graph(v vectors.ID, iters []int) *collate.Graph {
	g := collate.NewGraph()
	obs := ds.Obs[v]
	for ui, user := range ds.Users {
		if iters == nil {
			for _, h := range obs[ui] {
				g.AddObservation(user, h)
			}
			continue
		}
		for _, it := range iters {
			g.AddObservation(user, obs[ui][it])
		}
	}
	return g
}

// FullGraph returns (and caches) the all-iterations collation graph of v.
func (ds *Dataset) FullGraph(v vectors.ID) *collate.Graph {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if g, ok := ds.fullGraphs[v]; ok {
		return g
	}
	sp := ds.span("collate/" + v.String())
	defer sp.End()
	g := ds.Graph(v, nil)
	ds.fullGraphs[v] = g
	return g
}

// Labels returns each user's collated-fingerprint cluster label for v,
// aligned with Users order. Labels are dense ints in [0, NumClusters),
// canonicalized by first appearance; only label equality is meaningful.
func (ds *Dataset) Labels(v vectors.ID) []int {
	d := ds.dense(v)
	out := make([]int, len(d.labels))
	for i, l := range d.labels {
		out[i] = int(l)
	}
	return out
}

// subsetIterations splits iterations 0..k−1 into ⌊k/s⌋ disjoint subsets of
// size s, dropping the remainder — the paper's §3.3 construction.
func subsetIterations(k, s int) [][]int {
	if s <= 0 || s > k {
		return nil
	}
	n := k / s
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		sub := make([]int, s)
		for j := 0; j < s; j++ {
			sub[j] = i*s + j
		}
		out[i] = sub
	}
	return out
}
