package study

import (
	"fmt"

	"repro/internal/collate"
	"repro/internal/vectors"
)

// Longitudinal tracking: the paper's related work (FP-STALKER, Vastel et
// al.) studies how fingerprints *evolve* as browsers update and whether a
// tracker can ride through the changes. This module simulates a population
// over a sequence of epochs in which browsers occasionally upgrade their
// major version — which can shift the engine's FFT-library revision and
// mixing behaviour, and with them the audio fingerprint — and measures how
// well graph collation re-identifies users across epochs.

// LongitudinalConfig parameterizes a tracking simulation.
type LongitudinalConfig struct {
	// Seed drives population sampling, upgrades and jitter.
	Seed int64
	// Users is the tracked population size.
	Users int
	// Epochs is the number of observation rounds (e.g. weeks).
	Epochs int
	// UpgradeProb is each user's per-epoch probability of a browser major
	// upgrade.
	UpgradeProb float64
	// SamplesPerEpoch is how many times the vector runs per user per epoch.
	SamplesPerEpoch int
	// Vector is the fingerprinting vector tracked (default Hybrid).
	Vector vectors.ID
}

// LongitudinalResult summarizes a tracking simulation.
type LongitudinalResult struct {
	Users  int
	Epochs int
	// Upgrades counts browser-major upgrade events.
	Upgrades int
	// FingerprintShifts counts upgrades that changed the user's audio
	// stack (and therefore their elementary fingerprints).
	FingerprintShifts int
	// EpochAccuracy[e] is the fraction of users correctly re-identified at
	// epoch e ≥ 1 against the graph built from epochs < e.
	EpochAccuracy []float64
	// MeanAccuracy averages EpochAccuracy.
	MeanAccuracy float64
}

// String renders a one-line summary.
func (r LongitudinalResult) String() string {
	return fmt.Sprintf("users=%d epochs=%d upgrades=%d shifts=%d mean-accuracy=%.4f",
		r.Users, r.Epochs, r.Upgrades, r.FingerprintShifts, r.MeanAccuracy)
}

// Longitudinal runs the simulation: it builds the evolved dataset (see
// BuildEvolved) and replays it through a collation graph, measuring how
// often the tracker re-identifies each user against the history recorded
// so far.
func Longitudinal(cfg LongitudinalConfig) (LongitudinalResult, error) {
	if cfg.Users <= 0 || cfg.Epochs < 2 {
		return LongitudinalResult{}, fmt.Errorf("study: need ≥1 user and ≥2 epochs (got %d, %d)",
			cfg.Users, cfg.Epochs)
	}
	if cfg.Vector == 0 {
		cfg.Vector = vectors.Hybrid
	}
	ev, err := BuildEvolved(EvolvedConfig{LongitudinalConfig: cfg})
	if err != nil {
		return LongitudinalResult{}, err
	}

	res := LongitudinalResult{
		Users:             cfg.Users,
		Epochs:            cfg.Epochs,
		Upgrades:          ev.Upgrades,
		FingerprintShifts: ev.FingerprintShifts,
	}
	graph := collate.NewGraph()
	obs := ev.Obs[cfg.Vector]

	// Epoch 0: enrollment.
	for u, user := range ev.Users {
		for _, h := range obs[0][u] {
			graph.AddObservation(user, h)
		}
	}
	for e := 1; e < cfg.Epochs; e++ {
		correct := 0
		for u, user := range ev.Users {
			hashes := obs[e][u]
			want, known := graph.ClusterOf(user)
			got, m := graph.Match(hashes)
			if known && m == collate.MatchUnique && got == want {
				correct++
			}
			// The tracker records what it saw regardless.
			for _, h := range hashes {
				graph.AddObservation(user, h)
			}
		}
		res.EpochAccuracy = append(res.EpochAccuracy, float64(correct)/float64(len(ev.Users)))
	}
	var sum float64
	for _, a := range res.EpochAccuracy {
		sum += a
	}
	res.MeanAccuracy = sum / float64(len(res.EpochAccuracy))
	return res, nil
}
