package study

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/collate"
	"repro/internal/storage"
	"repro/internal/vectors"
)

// Surface keys used in storage.Record.Surfaces.
const (
	SurfaceCanvas   = "canvas"
	SurfaceFonts    = "fonts"
	SurfaceMathJS   = "mathjs"
	SurfacePlatform = "platform"
)

// ToRecords flattens a dataset into storage records, the format the
// collection backend persists and exports. Non-audio surfaces ride on each
// user's first record.
func (ds *Dataset) ToRecords(receivedAt time.Time) []storage.Record {
	recs := make([]storage.Record, 0, len(ds.Users)*len(vectors.All)*ds.Iterations)
	for ui, user := range ds.Users {
		surfaces := map[string]string{
			SurfaceCanvas:   ds.Canvas[ui],
			SurfaceFonts:    ds.Fonts[ui],
			SurfaceMathJS:   ds.MathJS[ui],
			SurfacePlatform: ds.Platforms[ui],
		}
		first := true
		for _, v := range vectors.All {
			for it, h := range ds.Obs[v][ui] {
				rec := storage.Record{
					SessionID:  "sim",
					UserID:     user,
					Vector:     v.String(),
					Iteration:  it,
					Hash:       h,
					UserAgent:  ds.UA[ui],
					ReceivedAt: receivedAt,
				}
				if first {
					rec.Surfaces = surfaces
					first = false
				}
				recs = append(recs, rec)
			}
		}
	}
	return recs
}

// LoadOptions configures FromRecordsOpts.
type LoadOptions struct {
	// KeepAllObservations retains every record's hash in arrival order
	// instead of compacting per-iteration maps to the minimum common
	// coverage: rows become ragged, duplicate (vector, iteration) replays
	// append rather than overwrite, and users missing a vector entirely get
	// an empty row (they stay singleton clusters for that vector). This is
	// the load mode whose collation graph and diversity rows the streaming
	// engine reproduces bit-identically on any record prefix — the paper's
	// batch analyses keep using the default compacting mode.
	KeepAllObservations bool
}

// FromRecords reconstructs a Dataset from stored collection records — the
// analysis entry point for real exports. Users appear in order of first
// record. Every user must cover the same audio vectors; missing iterations
// are tolerated by compacting each user's per-vector observations (analyses
// operate on whatever repetition count the smallest coverage provides).
func FromRecords(recs []storage.Record) (*Dataset, error) {
	return FromRecordsOpts(recs, LoadOptions{})
}

// FromRecordsOpts is FromRecords with explicit load options.
func FromRecordsOpts(recs []storage.Record, opt LoadOptions) (*Dataset, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("study: no records")
	}
	type userData struct {
		idx      int
		ua       string
		surfaces map[string]string
		obs      map[vectors.ID]map[int]string
		seq      map[vectors.ID][]string // keep-all mode: hashes in arrival order
	}
	users := map[string]*userData{}
	var order []string

	for _, r := range recs {
		u := users[r.UserID]
		if u == nil {
			u = &userData{idx: len(order)}
			if opt.KeepAllObservations {
				u.seq = map[vectors.ID][]string{}
			} else {
				u.obs = map[vectors.ID]map[int]string{}
			}
			users[r.UserID] = u
			order = append(order, r.UserID)
		}
		if u.ua == "" {
			u.ua = r.UserAgent
		}
		if len(r.Surfaces) > 0 {
			if u.surfaces == nil {
				u.surfaces = map[string]string{}
			}
			for k, v := range r.Surfaces {
				u.surfaces[k] = v
			}
		}
		v, err := vectors.ParseID(r.Vector)
		if err != nil {
			continue // auxiliary vectors (MathJS rows etc.) ride in Surfaces
		}
		if opt.KeepAllObservations {
			u.seq[v] = append(u.seq[v], r.Hash)
			continue
		}
		m := u.obs[v]
		if m == nil {
			m = map[int]string{}
			u.obs[v] = m
		}
		m[r.Iteration] = r.Hash
	}

	// Determine the common iteration count: the minimum per-user per-vector
	// coverage (compacted), or the maximum row length when keeping all
	// observations (rows stay ragged; Iterations is advisory).
	iterations := -1
	if opt.KeepAllObservations {
		for _, u := range users {
			for _, v := range vectors.All {
				if n := len(u.seq[v]); n > iterations {
					iterations = n
				}
			}
		}
	} else {
		for _, u := range users {
			for _, v := range vectors.All {
				n := len(u.obs[v])
				if n == 0 {
					return nil, fmt.Errorf("study: a user has no %v observations", v)
				}
				if iterations < 0 || n < iterations {
					iterations = n
				}
			}
		}
	}

	ds := &Dataset{
		Users:      order,
		Iterations: iterations,
		Obs:        make(map[vectors.ID][][]string, len(vectors.All)),
		UA:         make([]string, len(order)),
		Canvas:     make([]string, len(order)),
		Fonts:      make([]string, len(order)),
		MathJS:     make([]string, len(order)),
		Platforms:  make([]string, len(order)),
		fullGraphs: make(map[vectors.ID]*collate.Graph),
	}
	for _, v := range vectors.All {
		ds.Obs[v] = make([][]string, len(order))
	}
	for _, user := range order {
		u := users[user]
		ds.UA[u.idx] = u.ua
		ds.Canvas[u.idx] = u.surfaces[SurfaceCanvas]
		ds.Fonts[u.idx] = u.surfaces[SurfaceFonts]
		ds.MathJS[u.idx] = u.surfaces[SurfaceMathJS]
		ds.Platforms[u.idx] = u.surfaces[SurfacePlatform]
		for _, v := range vectors.All {
			if opt.KeepAllObservations {
				ds.Obs[v][u.idx] = u.seq[v]
				continue
			}
			// Compact observed iterations in ascending order.
			its := make([]int, 0, len(u.obs[v]))
			for it := range u.obs[v] {
				its = append(its, it)
			}
			sort.Ints(its)
			row := make([]string, iterations)
			for k := 0; k < iterations; k++ {
				row[k] = u.obs[v][its[k]]
			}
			ds.Obs[v][u.idx] = row
		}
	}
	ds.idx = buildIndex(ds.Obs)
	return ds, nil
}
