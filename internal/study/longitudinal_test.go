package study

import "testing"

func TestLongitudinalValidation(t *testing.T) {
	if _, err := Longitudinal(LongitudinalConfig{Users: 0, Epochs: 5}); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := Longitudinal(LongitudinalConfig{Users: 5, Epochs: 1}); err == nil {
		t.Error("single epoch accepted")
	}
}

// TestLongitudinalStableWithoutUpgrades: with no browser churn the tracker
// re-identifies essentially everyone at every epoch.
func TestLongitudinalStableWithoutUpgrades(t *testing.T) {
	res, err := Longitudinal(LongitudinalConfig{
		Seed: 5, Users: 60, Epochs: 5, UpgradeProb: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("no-churn: %s", res)
	if res.Upgrades != 0 || res.FingerprintShifts != 0 {
		t.Errorf("unexpected upgrades: %+v", res)
	}
	if res.MeanAccuracy < 0.98 {
		t.Errorf("mean accuracy %.4f without churn, want ≥ 0.98", res.MeanAccuracy)
	}
	if len(res.EpochAccuracy) != 4 {
		t.Errorf("epoch accuracies = %v", res.EpochAccuracy)
	}
}

// TestLongitudinalUpgradesShiftFingerprints: with heavy browser churn some
// upgrades cross engine-revision boundaries and change the audio stack; the
// tracker's accuracy dips but stays majority-correct (most upgrades don't
// shift the stack — FP-STALKER's observation that fingerprints evolve
// slowly).
func TestLongitudinalUpgradesShiftFingerprints(t *testing.T) {
	res, err := Longitudinal(LongitudinalConfig{
		Seed: 6, Users: 80, Epochs: 6, UpgradeProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn: %s (per-epoch %v)", res, res.EpochAccuracy)
	if res.Upgrades == 0 {
		t.Fatal("no upgrades happened at p=0.5")
	}
	if res.FingerprintShifts == 0 {
		t.Error("no upgrade ever shifted a fingerprint — version axes inert")
	}
	if res.FingerprintShifts >= res.Upgrades {
		t.Error("every upgrade shifted the fingerprint — engine revisions too fine-grained")
	}
	if res.MeanAccuracy < 0.60 {
		t.Errorf("mean accuracy %.4f under churn, want ≥ 0.60", res.MeanAccuracy)
	}
	if res.MeanAccuracy >= 1.0 {
		t.Error("accuracy unaffected by fingerprint shifts — simulation inert")
	}
}

func BenchmarkLongitudinal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Longitudinal(LongitudinalConfig{
			Seed: int64(i), Users: 40, Epochs: 4, UpgradeProb: 0.3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
