package study

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"

	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/vectors"
)

// The evolved-dataset builder: LongitudinalConfig generalized from a
// single-vector accuracy simulation into a reusable generator of
// time-evolving observation data. Each user's device steps through a
// population.ChurnModel between epochs — browser/OS upgrades mutating the
// DSP-kernel parameters mid-study — and every configured vector is rendered
// SamplesPerEpoch times per epoch. Longitudinal replays the result through
// a collation graph; the verification workload (internal/verify) splits it
// into enrollment history and genuine/impostor trials for FAR/FRR sweeps.

// EvolvedConfig parameterizes an evolved-dataset build. The embedded
// LongitudinalConfig keeps the original knobs (Seed, Users, Epochs,
// UpgradeProb, SamplesPerEpoch, Vector); the additional fields widen it to
// multiple vectors and a full churn model.
type EvolvedConfig struct {
	LongitudinalConfig
	// Vectors selects which vectors are rendered each epoch. Nil renders
	// only LongitudinalConfig.Vector (default Hybrid).
	Vectors []vectors.ID
	// Churn is the upgrade model applied between epochs. The zero value
	// derives a browser-only model from UpgradeProb, preserving the
	// original Longitudinal semantics.
	Churn population.ChurnModel
	// Mix selects the population's demographic mix (zero = MainStudyMix).
	Mix population.Mix
	// RenderCache, when non-nil, shares renders with other studies in the
	// process (cost scales with distinct audio stacks, not users).
	RenderCache *vectors.Cache
	// Parallelism bounds concurrent per-user workers (0 = serial). Results
	// are scheduling-independent: every user's randomness is pre-seeded.
	Parallelism int
}

// EvolvedDataset is a time-evolving observation set.
type EvolvedDataset struct {
	// Users holds participant IDs, index-aligned with the per-user axes.
	Users []string
	// Epochs and SamplesPerEpoch echo the build configuration.
	Epochs, SamplesPerEpoch int
	// Vectors lists the rendered vectors, in configuration order.
	Vectors []vectors.ID
	// Obs[v][e][u] are user u's sample hashes for vector v at epoch e.
	Obs map[vectors.ID][][][]string
	// Events[e][u] is what the churn model did to user u entering epoch e.
	// Events[0] is all-zero: epoch 0 is enrollment, nothing has upgraded.
	Events [][]population.ChurnEvent
	// Upgrades counts browser-major upgrade events; OSUpgrades counts OS
	// release changes; FingerprintShifts counts events that changed a
	// device's audio stack (and therefore its elementary fingerprints).
	Upgrades, OSUpgrades, FingerprintShifts int
}

// Fingerprint returns a content digest of the whole dataset — users,
// observations, and churn events. Two builds of the same config must agree
// byte for byte (the determinism probe in the tests).
func (ev *EvolvedDataset) Fingerprint() string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	for _, u := range ev.Users {
		writeStr(u)
	}
	for _, v := range ev.Vectors {
		writeStr(v.String())
		for _, epoch := range ev.Obs[v] {
			for _, samples := range epoch {
				for _, hash := range samples {
					writeStr(hash)
				}
			}
		}
	}
	for _, epoch := range ev.Events {
		for _, e := range epoch {
			var b byte
			if e.BrowserUpgrade {
				b |= 1
			}
			if e.OSUpgrade {
				b |= 2
			}
			if e.StackShift {
				b |= 4
			}
			h.Write([]byte{b})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BuildEvolved renders the evolved dataset. Each user is driven by its own
// pre-derived rng (churn draws and jitter draws both), so the output is
// bit-identical regardless of Parallelism.
func BuildEvolved(cfg EvolvedConfig) (*EvolvedDataset, error) {
	if cfg.Users <= 0 || cfg.Epochs < 1 {
		return nil, fmt.Errorf("study: need ≥1 user and ≥1 epoch (got %d, %d)",
			cfg.Users, cfg.Epochs)
	}
	if cfg.SamplesPerEpoch <= 0 {
		cfg.SamplesPerEpoch = 3
	}
	if cfg.Vector == 0 {
		cfg.Vector = vectors.Hybrid
	}
	vecs := cfg.Vectors
	if len(vecs) == 0 {
		vecs = []vectors.ID{cfg.Vector}
	}
	churn := cfg.Churn
	if churn.IsZero() {
		churn = population.ChurnModel{BrowserUpgradeProb: cfg.UpgradeProb}
	}

	devs := population.Sample(population.Config{Seed: cfg.Seed, N: cfg.Users, Mix: cfg.Mix})
	jitter := platform.DefaultJitter()
	cache := cfg.RenderCache
	if cache == nil {
		cache = vectors.NewCache()
	}

	ev := &EvolvedDataset{
		Users:           make([]string, len(devs)),
		Epochs:          cfg.Epochs,
		SamplesPerEpoch: cfg.SamplesPerEpoch,
		Vectors:         vecs,
		Obs:             make(map[vectors.ID][][][]string, len(vecs)),
		Events:          make([][]population.ChurnEvent, cfg.Epochs),
	}
	for i, d := range devs {
		ev.Users[i] = d.ID
	}
	for _, v := range vecs {
		epochs := make([][][]string, cfg.Epochs)
		for e := range epochs {
			epochs[e] = make([][]string, len(devs))
		}
		ev.Obs[v] = epochs
	}
	for e := range ev.Events {
		ev.Events[e] = make([]population.ChurnEvent, len(devs))
	}

	// Pre-derive per-user seeds so worker scheduling cannot reorder draws.
	seedRng := rand.New(rand.NewSource(cfg.Seed ^ 0x45564f4c56)) // "EVOLV"
	userSeeds := make([]int64, len(devs))
	for i := range userSeeds {
		userSeeds[i] = seedRng.Int63()
	}

	if err := runAll(len(devs), cfg.Parallelism, func(u int) error {
		d := devs[u]
		rng := rand.New(rand.NewSource(userSeeds[u]))
		for e := 0; e < cfg.Epochs; e++ {
			if e > 0 {
				ev.Events[e][u] = churn.Step(rng, d)
			}
			runner := vectors.NewRunner(d.AudioTraits(), d.SampleRate)
			stack := d.AudioStackKey()
			for _, v := range vecs {
				samples := make([]string, cfg.SamplesPerEpoch)
				for s := range samples {
					fp, err := cache.Run(stack, runner, v, jitter.Offset(rng, d.Load, v))
					if err != nil {
						return err
					}
					samples[s] = fp.Hash
				}
				ev.Obs[v][e][u] = samples
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	for _, epoch := range ev.Events {
		for _, evt := range epoch {
			if evt.BrowserUpgrade {
				ev.Upgrades++
			}
			if evt.OSUpgrade {
				ev.OSUpgrades++
			}
			if evt.StackShift {
				ev.FingerprintShifts++
			}
		}
	}
	return ev, nil
}
