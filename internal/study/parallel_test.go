package study

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vectors"
	"repro/internal/webaudio"
)

// analysisResults bundles the outputs of every parallelized sweep.
type analysisResults struct {
	agreement []AgreementPoint
	match     []MatchScoreRow
	pairwise  [][]float64
	ranking   RankingResult
}

func sweepAll(t *testing.T, ds *Dataset) analysisResults {
	t.Helper()
	var r analysisResults
	var err error
	if r.agreement, err = ds.AgreementScores([]int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	r.match = ds.MatchScores([]int{3, 4})
	if r.pairwise, err = ds.PairwiseVectorAMI(); err != nil {
		t.Fatal(err)
	}
	r.ranking = ds.SubsetRanking(4)
	return r
}

// TestParallelSerialEquivalence: every parallel sweep must produce results
// bit-identical to its serial (Parallelism: 1) run — same floats, same
// order.
func TestParallelSerialEquivalence(t *testing.T) {
	ds, err := Run(Config{Seed: 7, Users: 120, Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	ds.Parallelism = 1
	serial := sweepAll(t, ds)
	ds.Parallelism = 8
	parallel := sweepAll(t, ds)

	if !reflect.DeepEqual(serial.agreement, parallel.agreement) {
		t.Errorf("AgreementScores differ between serial and parallel runs:\n%v\nvs\n%v",
			serial.agreement, parallel.agreement)
	}
	if !reflect.DeepEqual(serial.match, parallel.match) {
		t.Errorf("MatchScores differ between serial and parallel runs:\n%v\nvs\n%v",
			serial.match, parallel.match)
	}
	if !reflect.DeepEqual(serial.pairwise, parallel.pairwise) {
		t.Errorf("PairwiseVectorAMI differs between serial and parallel runs:\n%v\nvs\n%v",
			serial.pairwise, parallel.pairwise)
	}
	if !reflect.DeepEqual(serial.ranking, parallel.ranking) {
		t.Errorf("SubsetRanking differs between serial and parallel runs:\n%v\nvs\n%v",
			serial.ranking, parallel.ranking)
	}
}

// TestRunAllWorkerError is the regression test for the worker-pool
// deadlock: with more work items than workers and every item failing, the
// old channel-fed pool blocked forever in the producer once all workers
// had exited. runAll must instead return the error promptly.
func TestRunAllWorkerError(t *testing.T) {
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- runAll(500, 4, func(int) error { return boom })
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Errorf("runAll error = %v, want %v", err, boom)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runAll deadlocked on worker error")
	}
}

// TestRunAllCoverage: without errors, every index must run exactly once,
// at any worker count.
func TestRunAllCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 100
		var counts [n]atomic.Int32
		if err := runAll(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestRunAllStopsAfterError: once an error surfaces, workers stop claiming
// new indices rather than draining the remaining work.
func TestRunAllStopsAfterError(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	_ = runAll(10_000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if n := ran.Load(); n > 1000 {
		t.Errorf("%d items ran after an immediate error; cancellation is not propagating", n)
	}
}

// TestParallelRenderSingleflight: under a parallel run with a shared cache,
// concurrent misses on the same (stack, vector, offset) key must collapse to
// one render — every cache miss corresponds to exactly one memoized entry —
// and the dataset must be bit-identical to a serial run.
func TestParallelRenderSingleflight(t *testing.T) {
	cfg := Config{Seed: 5, Users: 60, Iterations: 6}

	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cache := vectors.NewCache()
	par := cfg
	par.Parallelism = 8
	par.RenderCache = cache
	parallel, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.Obs, parallel.Obs) {
		t.Error("parallel run with shared cache produced different observations than serial run")
	}
	st := cache.Stats()
	if st.Misses != int64(cache.Len()) {
		t.Errorf("misses (%d) != entries (%d): duplicate renders slipped past singleflight",
			st.Misses, cache.Len())
	}
	if st.Hits == 0 {
		t.Error("expected cache hits in a 60-user study (platform classes repeat)")
	}
}

// TestConcurrentCacheAndGraphStress exercises the shared vectors.Cache and
// the dataset's lazily built caches (FullGraph, Index, dense labels) from
// many goroutines — run under -race via `make check`.
func TestConcurrentCacheAndGraphStress(t *testing.T) {
	ds, err := Run(Config{Seed: 11, Users: 30, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	cache := vectors.NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runner := vectors.NewRunner(webaudio.DefaultTraits(), 0)
			for _, v := range vectors.All {
				if _, err := cache.Run("default", runner, v, w%3); err != nil {
					t.Error(err)
					return
				}
				g := ds.FullGraph(v)
				if g.NumUsers() != 30 {
					t.Errorf("FullGraph(%v) has %d users", v, g.NumUsers())
					return
				}
				if got := len(ds.Labels(v)); got != 30 {
					t.Errorf("Labels(%v) has %d entries", v, got)
					return
				}
			}
			if _, err := ds.AgreementScores([]int{2}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
}
