package study

import (
	"context"

	"repro/internal/obs"
)

// Worker-pool telemetry on the shared registry. The active-worker gauge
// tracks pool utilization live (scrape it via -pprof's /metrics during a
// long run); the task counter accumulates across sweeps.
var (
	mWorkersActive = obs.Default.Gauge("study_workers_active",
		"goroutines currently executing pool work items", nil)
	mTasks = obs.Default.Counter("study_pool_tasks_total",
		"work items executed by the study worker pools", nil)
	mSweepCells = obs.Default.Counter("study_sweep_cells_total",
		"analysis sweep cells evaluated", nil)
)

// SetTracer installs the span under which the dataset's analysis stages
// (collation, cluster-agreement sweeps, diversity summaries) record their
// timing. A nil tracer (the default) disables analysis spans. The renderer
// of a report sets this around each experiment so stage spans nest under
// the experiment that triggered them.
func (ds *Dataset) SetTracer(sp *obs.Span) { ds.tracer.Store(sp) }

// Tracer returns the currently installed analysis tracer (nil when
// untraced).
func (ds *Dataset) Tracer() *obs.Span { return ds.tracer.Load() }

// span opens an analysis-stage child span (nil when untraced; all *Span
// methods are nil-safe).
func (ds *Dataset) span(name string) *obs.Span {
	return ds.Tracer().StartChild(name)
}

// obsStart opens a child span only when ctx already carries one, so
// untraced runs allocate nothing (nil *obs.Span methods no-op).
func obsStart(ctx context.Context, name string) (context.Context, *obs.Span) {
	if obs.SpanFromContext(ctx) == nil {
		return ctx, nil
	}
	return obs.Start(ctx, name)
}
