package study

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/collate"
	"repro/internal/diversity"
	"repro/internal/vectors"
)

// ---------------------------------------------------------------------------
// Table 1 — stability: distinct fingerprints per user over k iterations.

// StabilityRow is one column of the paper's Table 1.
type StabilityRow struct {
	Vector vectors.ID
	Min    int
	Max    int
	Mean   float64
}

// DistinctPerUser returns, for vector v, how many distinct elementary
// fingerprints each user emitted across all iterations.
func (ds *Dataset) DistinctPerUser(v vectors.ID) []int {
	obs := ds.Obs[v]
	out := make([]int, len(obs))
	for ui, row := range obs {
		seen := make(map[string]struct{}, 4)
		for _, h := range row {
			seen[h] = struct{}{}
		}
		out[ui] = len(seen)
	}
	return out
}

// Table1 computes the per-vector Min/Max/Mean of distinct fingerprints per
// user (paper Table 1).
func (ds *Dataset) Table1() []StabilityRow {
	rows := make([]StabilityRow, 0, len(vectors.All))
	for _, v := range vectors.All {
		counts := ds.DistinctPerUser(v)
		row := StabilityRow{Vector: v, Min: counts[0], Max: counts[0]}
		sum := 0
		for _, c := range counts {
			if c < row.Min {
				row.Min = c
			}
			if c > row.Max {
				row.Max = c
			}
			sum += c
		}
		row.Mean = float64(sum) / float64(len(counts))
		rows = append(rows, row)
	}
	return rows
}

// Figure3 returns the bar/CDF data of the distinct-fingerprint distribution
// for one vector (the paper plots Hybrid).
func (ds *Dataset) Figure3(v vectors.ID) diversity.Histogram {
	return diversity.NewHistogram(ds.DistinctPerUser(v))
}

// ---------------------------------------------------------------------------
// Figure 5 — cluster agreement across disjoint iteration subsets.

// AgreementPoint is one (vector, subset size) mean-AMI measurement.
type AgreementPoint struct {
	Vector  vectors.ID
	S       int
	MeanAMI float64
	Pairs   int
}

// sweepItem is one (vector, subset size) cell of a §3.3 sweep.
type sweepItem struct {
	v vectors.ID
	s int
}

// sweepItems enumerates the (vector, s) cells with at least two disjoint
// subsets, in the serial output order (vectors.All major, sValues minor).
func (ds *Dataset) sweepItems(sValues []int) []sweepItem {
	items := make([]sweepItem, 0, len(vectors.All)*len(sValues))
	for _, v := range vectors.All {
		for _, s := range sValues {
			if s > 0 && s <= ds.Iterations && ds.Iterations/s >= 2 {
				items = append(items, sweepItem{v, s})
			}
		}
	}
	return items
}

// AgreementScores computes, for each vector and subset size s, the mean
// pairwise AMI between the user clusterings produced by the ⌊k/s⌋ disjoint
// iteration subsets (paper §3.3, Fig. 5). Cells are evaluated concurrently
// (bounded by Dataset.Parallelism) over the interned observation index;
// each cell writes a pre-sized slot, so the output is bit-identical to a
// serial run.
func (ds *Dataset) AgreementScores(sValues []int) ([]AgreementPoint, error) {
	ix := ds.Index()
	items := ds.sweepItems(sValues)
	sp := ds.span("cluster-agreement")
	sp.SetAttr("cells", len(items))
	defer sp.End()
	mSweepCells.Add(int64(len(items)))
	out := make([]AgreementPoint, len(items))
	errs := make([]error, len(items))
	forEach(len(items), ds.parallelism(), func(n int) {
		v, s := items[n].v, items[n].s
		subs := subsetIterations(ds.Iterations, s)
		labelings := make([][]int32, len(subs))
		ks := make([]int, len(subs))
		for i, iters := range subs {
			g := intGraphOf(ix, len(ds.Users), v, iters)
			labelings[i] = g.Labels()
			for _, l := range labelings[i] {
				if int(l) >= ks[i] {
					ks[i] = int(l) + 1
				}
			}
		}
		var sum float64
		pairs := 0
		for i := 0; i < len(labelings); i++ {
			for j := i + 1; j < len(labelings); j++ {
				ami, err := cluster.AMIDense(labelings[i], labelings[j], ks[i], ks[j])
				if err != nil {
					errs[n] = fmt.Errorf("study: AMI(%v, s=%d): %w", v, s, err)
					return
				}
				sum += ami
				pairs++
			}
		}
		out[n] = AgreementPoint{Vector: v, S: s, MeanAMI: sum / float64(pairs), Pairs: pairs}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 6 — fingerprint match scores.

// MatchScoreRow reports, for one vector and subset size, the fraction of
// held-out user subsets that point uniquely back to the user's training
// cluster.
type MatchScoreRow struct {
	Vector vectors.ID
	S      int
	Score  float64
	Trials int
}

// MatchScores implements §3.3's match-score measurement: the first size-s
// subset trains a collation graph; every remaining subset of every user is
// matched against it without insertion. Each (vector, s) cell trains and
// matches over interned IDs and runs concurrently (bounded by
// Dataset.Parallelism); results land in pre-sized slots, bit-identical to
// a serial run.
func (ds *Dataset) MatchScores(sValues []int) []MatchScoreRow {
	ix := ds.Index()
	items := ds.sweepItems(sValues)
	sp := ds.span("match-score")
	sp.SetAttr("cells", len(items))
	defer sp.End()
	mSweepCells.Add(int64(len(items)))
	out := make([]MatchScoreRow, len(items))
	forEach(len(items), ds.parallelism(), func(n int) {
		v, s := items[n].v, items[n].s
		subs := subsetIterations(ds.Iterations, s)
		training := intGraphOf(ix, len(ds.Users), v, subs[0])
		obsIDs := ix.ObsIDs(v)
		ids := make([]int32, s)
		success, trials := 0, 0
		for ui := range ds.Users {
			want := training.ClusterOf(int32(ui))
			for _, iters := range subs[1:] {
				for k, it := range iters {
					ids[k] = obsIDs[ui][it]
				}
				got, res := training.Match(ids)
				trials++
				if res == collate.MatchUnique && got == want {
					success++
				}
			}
		}
		out[n] = MatchScoreRow{
			Vector: v, S: s,
			Score:  float64(success) / float64(trials),
			Trials: trials,
		}
	})
	return out
}

// ---------------------------------------------------------------------------
// Tables 2 & 3 — diversity.

// DiversityRow is one row of the paper's diversity tables.
type DiversityRow struct {
	Name string
	diversity.Summary
}

// CombinedLabels returns each user's tuple of collated cluster labels
// across all seven vectors — the "Combined" row of Table 2.
func (ds *Dataset) CombinedLabels() []string {
	parts := make([][]int, len(vectors.All))
	for i, v := range vectors.All {
		parts[i] = ds.Labels(v)
	}
	combined, err := diversity.Combine(parts...)
	if err != nil {
		panic(err) // impossible: all slices share Devices length
	}
	return combined
}

// Table2 computes the diversity of the 7 collated audio vectors plus their
// combination (paper Table 2).
func (ds *Dataset) Table2() []DiversityRow {
	sp := ds.span("diversity")
	defer sp.End()
	rows := make([]DiversityRow, 0, len(vectors.All)+1)
	for _, v := range vectors.All {
		d := ds.dense(v)
		sum := diversity.Summarize(d.labels)
		// Distinct/Unique per the paper are cluster counts in the graph.
		sum.Distinct = d.k
		sum.Unique = d.unique
		rows = append(rows, DiversityRow{Name: v.String(), Summary: sum})
	}
	rows = append(rows, DiversityRow{Name: "Combined", Summary: diversity.Summarize(ds.CombinedLabels())})
	return rows
}

// Table3 computes the diversity of the Canvas, Fonts and User-Agent vectors
// (paper Table 3).
func (ds *Dataset) Table3() []DiversityRow {
	sp := ds.span("diversity")
	defer sp.End()
	return []DiversityRow{
		{Name: "Canvas", Summary: diversity.Summarize(ds.Canvas)},
		{Name: "Fonts", Summary: diversity.Summarize(ds.Fonts)},
		{Name: "User-Agent", Summary: diversity.Summarize(ds.UA)},
	}
}

// ---------------------------------------------------------------------------
// §4 — User-Agent span analysis (the W3C contradiction).

// UASpanResult quantifies how often one UA string hides several audio
// fingerprints, refuting the W3C claim that Web Audio merely reveals
// UA-derivable information.
type UASpanResult struct {
	// Vector is the audio vector whose clusters were compared.
	Vector vectors.ID
	// MultiUserUAs is the number of UA strings shared by ≥ 2 users.
	MultiUserUAs int
	// MultiUserUAUsers is how many users those UAs cover.
	MultiUserUAUsers int
	// SpanningUAs is how many multi-user UAs span ≥ 2 audio clusters.
	SpanningUAs int
	// SpanningUAUsers is how many users the spanning UAs cover.
	SpanningUAUsers int
	// MaxClustersPerUA is the largest number of audio clusters observed
	// under a single UA string.
	MaxClustersPerUA int
	// UAsWith5Plus counts UAs associated with ≥ 5 distinct clusters.
	UAsWith5Plus int
}

// UASpan computes the §4 analysis for vector v.
func (ds *Dataset) UASpan(v vectors.ID) UASpanResult {
	labels := ds.Labels(v)
	byUA := make(map[string][]int)
	for i := range ds.Users {
		byUA[ds.UA[i]] = append(byUA[ds.UA[i]], labels[i])
	}
	res := UASpanResult{Vector: v}
	for _, ls := range byUA {
		if len(ls) < 2 {
			continue
		}
		res.MultiUserUAs++
		res.MultiUserUAUsers += len(ls)
		distinct := make(map[int]struct{}, len(ls))
		for _, l := range ls {
			distinct[l] = struct{}{}
		}
		if len(distinct) >= 2 {
			res.SpanningUAs++
			res.SpanningUAUsers += len(ls)
		}
		if len(distinct) >= 5 {
			res.UAsWith5Plus++
		}
		if len(distinct) > res.MaxClustersPerUA {
			res.MaxClustersPerUA = len(distinct)
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// §4 — additive value of audio fingerprinting.

// AdditiveResult quantifies the entropy a fingerprinting surface gains when
// the combined audio fingerprint is appended to it.
type AdditiveResult struct {
	Name         string
	Base         diversity.Summary
	WithAudio    diversity.Summary
	NormIncrease float64 // (e'_norm − e_norm) / e_norm
}

// AdditiveValue measures the combined-audio uplift over a base surface
// (per-user values aligned with Users).
func (ds *Dataset) AdditiveValue(name string, base []string) AdditiveResult {
	audio := ds.CombinedLabels()
	joint, err := diversity.Combine(base, audio)
	if err != nil {
		panic(err)
	}
	b := diversity.Summarize(base)
	w := diversity.Summarize(joint)
	res := AdditiveResult{Name: name, Base: b, WithAudio: w}
	if b.Normalized > 0 {
		res.NormIncrease = (w.Normalized - b.Normalized) / b.Normalized
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 9 — cross-vector cluster agreement heatmap.

// PairwiseVectorAMI returns the AMI between the collated clusterings of all
// seven vectors, in vectors.All order. The pairs of the symmetric matrix
// are computed concurrently over the cached interned labelings.
func (ds *Dataset) PairwiseVectorAMI() ([][]float64, error) {
	sp := ds.span("cluster-agreement")
	defer sp.End()
	k := len(vectors.All)
	infos := make([]*denseInfo, k)
	for i, v := range vectors.All {
		infos[i] = ds.dense(v)
	}
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
		out[i][i] = 1
	}
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	errs := make([]error, len(pairs))
	forEach(len(pairs), ds.parallelism(), func(n int) {
		i, j := pairs[n].i, pairs[n].j
		v, err := cluster.AMIDense(infos[i].labels, infos[j].labels, infos[i].k, infos[j].k)
		if err != nil {
			errs[n] = err
			return
		}
		out[i][j] = v
		out[j][i] = v
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// §5 — ranking robustness across user subsets.

// RankingResult reports the e_norm ranking of the 9 vectors (7 audio
// collated + Canvas + Fonts + UA) per user subset.
type RankingResult struct {
	// Rankings[i] is subset i's vector names, most diverse first.
	Rankings [][]string
	// Consistent is true when every subset produced the same order.
	Consistent bool
}

// SubsetRanking divides users into `parts` disjoint equal subsets, computes
// each fingerprinting vector's normalized entropy within each subset, and
// checks whether the induced rankings agree (paper §5). Audio vectors are
// scored over their cached interned labelings (no per-call string
// conversion) and the (part, vector) entropy cells run concurrently,
// bounded by Dataset.Parallelism; entropies use deterministic summation
// order, so results are identical across parallelism settings and runs.
func (ds *Dataset) SubsetRanking(parts int) RankingResult {
	sp := ds.span("diversity")
	sp.SetAttr("parts", parts)
	defer sp.End()
	type namedEntropy struct {
		name    string
		entropy func(lo, hi int) float64
	}
	all := make([]namedEntropy, 0, len(vectors.All)+3)
	for _, v := range vectors.All {
		labels := ds.dense(v).labels
		all = append(all, namedEntropy{v.String(), func(lo, hi int) float64 {
			return diversity.NormalizedEntropyStable(labels[lo:hi])
		}})
	}
	for _, nv := range []struct {
		name   string
		values []string
	}{{"Canvas", ds.Canvas}, {"Fonts", ds.Fonts}, {"User-Agent", ds.UA}} {
		values := nv.values
		all = append(all, namedEntropy{nv.name, func(lo, hi int) float64 {
			return diversity.NormalizedEntropyStable(values[lo:hi])
		}})
	}

	n := len(ds.Users)
	entropies := make([][]float64, parts)
	for p := range entropies {
		entropies[p] = make([]float64, len(all))
	}
	forEach(parts*len(all), ds.parallelism(), func(cell int) {
		p, vi := cell/len(all), cell%len(all)
		lo, hi := p*n/parts, (p+1)*n/parts
		entropies[p][vi] = all[vi].entropy(lo, hi)
	})

	res := RankingResult{Consistent: true}
	for p := 0; p < parts; p++ {
		type scored struct {
			name string
			e    float64
		}
		scores := make([]scored, 0, len(all))
		for vi, nv := range all {
			scores = append(scores, scored{nv.name, entropies[p][vi]})
		}
		sort.SliceStable(scores, func(i, j int) bool { return scores[i].e > scores[j].e })
		rank := make([]string, len(scores))
		for i, s := range scores {
			rank[i] = s.name
		}
		res.Rankings = append(res.Rankings, rank)
		if p > 0 {
			for i := range rank {
				if rank[i] != res.Rankings[0][i] {
					res.Consistent = false
				}
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Tables 4 & 5 — the Math-JS follow-up (run on a follow-up dataset).

// Table4 computes the diversity of DC, FFT, Hybrid (collated) and Math-JS
// on this dataset (the paper runs it on the 528-user follow-up population).
func (ds *Dataset) Table4() []DiversityRow {
	rows := make([]DiversityRow, 0, 4)
	for _, v := range []vectors.ID{vectors.DC, vectors.FFT, vectors.Hybrid} {
		d := ds.dense(v)
		sum := diversity.Summarize(d.labels)
		sum.Distinct = d.k
		sum.Unique = d.unique
		rows = append(rows, DiversityRow{Name: v.String(), Summary: sum})
	}
	rows = append(rows, DiversityRow{
		Name:    "Math JS",
		Summary: diversity.Summarize(ds.MathJS),
	})
	return rows
}

// Table5Row compares distinct DC and Math-JS fingerprints on one platform.
type Table5Row struct {
	Platform string
	Users    int
	DC       int
	MathJS   int
}

// Table5 computes the per-platform DC vs Math-JS comparison, for platforms
// with at least minUsers participants, ordered by descending user count.
func (ds *Dataset) Table5(minUsers int) []Table5Row {
	plats := ds.Platforms
	mjs := ds.MathJS
	dcLabels := ds.Labels(vectors.DC)
	dc := make([]string, len(dcLabels))
	for i, l := range dcLabels {
		dc[i] = fmt.Sprint(l)
	}
	sizes := diversity.GroupSizes(plats)
	perDC, _ := diversity.DistinctPerGroup(plats, dc)
	perMJS, _ := diversity.DistinctPerGroup(plats, mjs)

	var rows []Table5Row
	for p, n := range sizes {
		if n < minUsers {
			continue
		}
		rows = append(rows, Table5Row{Platform: p, Users: n, DC: perDC[p], MathJS: perMJS[p]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Users != rows[j].Users {
			return rows[i].Users > rows[j].Users
		}
		return rows[i].Platform < rows[j].Platform
	})
	return rows
}

// ---------------------------------------------------------------------------
// Ablation — naive exact-hash identity vs graph collation.

// NaiveMatchScores is the ablation baseline for MatchScores: the
// fingerprinter keys each user on the single elementary fingerprint from
// the first training iteration and recognizes a return visit only when the
// held-out subset contains that exact hash. No collation graph. For the
// perfectly stable DC vector this matches the graph method; for every
// fickle vector it shows why the paper's §3.2 collation is necessary.
func (ds *Dataset) NaiveMatchScores(sValues []int) []MatchScoreRow {
	var out []MatchScoreRow
	for _, v := range vectors.All {
		for _, s := range sValues {
			subs := subsetIterations(ds.Iterations, s)
			if len(subs) < 2 {
				continue
			}
			success, trials := 0, 0
			for ui := range ds.Users {
				key := ds.Obs[v][ui][subs[0][0]]
				for _, iters := range subs[1:] {
					trials++
					for _, it := range iters {
						if ds.Obs[v][ui][it] == key {
							success++
							break
						}
					}
				}
			}
			out = append(out, MatchScoreRow{
				Vector: v, S: s,
				Score:  float64(success) / float64(trials),
				Trials: trials,
			})
		}
	}
	return out
}
