package vectors

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleflight: N concurrent misses on one key run exactly one
// render; the rest block on the in-flight call and share its result.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	gate := make(chan struct{})
	var renders atomic.Int64

	const workers = 8
	var wg sync.WaitGroup
	results := make([]Fingerprint, workers)
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = c.Do("stack", DC, 0, func() (Fingerprint, error) {
				renders.Add(1)
				<-gate // hold the render open until every waiter has arrived
				return Fingerprint{Vector: DC, Hash: "h", Sum: 1}, nil
			})
		}(g)
	}

	// Wait until the other seven goroutines have joined the in-flight call,
	// then release the render.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Waits < workers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d waiters joined, want %d", c.Stats().Waits, workers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for g := 0; g < workers; g++ {
		if errs[g] != nil {
			t.Fatalf("worker %d: %v", g, errs[g])
		}
		if results[g].Hash != "h" {
			t.Fatalf("worker %d got %q", g, results[g].Hash)
		}
	}
	if n := renders.Load(); n != 1 {
		t.Errorf("render ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Waits != workers-1 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 1 miss, %d waits, 0 hits", st, workers-1)
	}
	if _, err := c.Do("stack", DC, 0, func() (Fingerprint, error) {
		t.Error("render ran on a warm key")
		return Fingerprint{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("hits = %d after warm lookup, want 1", st.Hits)
	}
	if r := c.Stats().HitRatio(); r <= 0 || r > 1 {
		t.Errorf("hit ratio %v out of (0, 1]", r)
	}
}

// TestCacheErrorNotCached: a failed render is reported to every waiter but
// leaves no entry, so the next lookup retries.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache()
	boom := errors.New("render failed")
	if _, err := c.Do("stack", FFT, 0, func() (Fingerprint, error) {
		return Fingerprint{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: len %d", c.Len())
	}
	fp, err := c.Do("stack", FFT, 0, func() (Fingerprint, error) {
		return Fingerprint{Hash: "ok"}, nil
	})
	if err != nil || fp.Hash != "ok" {
		t.Fatalf("retry after error = %v, %v", fp, err)
	}
}

// TestCacheMaxEntries: the entry bound holds and evictions are counted.
func TestCacheMaxEntries(t *testing.T) {
	c := NewCache()
	c.SetMaxEntries(3)
	for i := 0; i < 6; i++ {
		if _, err := c.Do("stack", DC, i, func() (Fingerprint, error) {
			return Fingerprint{Hash: fmt.Sprintf("h%d", i)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 3 {
		t.Errorf("len %d exceeds bound 3", c.Len())
	}
	if st := c.Stats(); st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
	// Shrinking evicts immediately.
	c.SetMaxEntries(1)
	if c.Len() > 1 {
		t.Errorf("len %d after shrinking bound to 1", c.Len())
	}
	// Restoring unbounded keeps entries.
	c.SetMaxEntries(0)
	if _, err := c.Do("stack", DC, 100, func() (Fingerprint, error) {
		return Fingerprint{Hash: "x"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("len %d after unbounding, want 2", c.Len())
	}
}
