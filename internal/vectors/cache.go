package vectors

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes fingerprints by (audio-stack key, vector, capture offset).
// Rendering is bit-deterministic given those three inputs (asserted by the
// engine's tests), so memoization is exact: a study over thousands of users
// re-renders only once per distinct platform class and capture state,
// turning an O(users × iterations) rendering bill into O(platform classes ×
// offsets). Safe for concurrent use.
//
// Misses are deduplicated singleflight-style: when N goroutines miss on the
// same key concurrently (the common case in a parallel study sweep, where
// every worker meets the same few dozen platform classes), exactly one
// renders and the rest wait for its result. Without this, raising
// study.Config.Parallelism multiplies redundant renders instead of
// throughput.
type Cache struct {
	mu       sync.Mutex
	m        map[cacheKey]Fingerprint
	inflight map[cacheKey]*inflightCall
	max      int // 0 = unbounded

	hits      atomic.Int64
	misses    atomic.Int64
	waits     atomic.Int64
	evictions atomic.Int64

	// shadow, when set, samples this cache's miss-path renders through the
	// lockstep engine audit. Hung off the cache because the miss path is
	// exactly the set of renders that actually execute the engine.
	shadow atomic.Pointer[ShadowAuditor]
}

type cacheKey struct {
	stack  string
	vector ID
	offset int
}

// inflightCall is one in-progress render other goroutines can wait on.
type inflightCall struct {
	done chan struct{}
	fp   Fingerprint
	err  error
}

// NewCache returns an empty, unbounded cache.
func NewCache() *Cache {
	return &Cache{
		m:        make(map[cacheKey]Fingerprint),
		inflight: make(map[cacheKey]*inflightCall),
	}
}

// SetMaxEntries bounds the cache to n memoized renders (0 restores
// unbounded). When full, an arbitrary entry is evicted per insert —
// acceptable because every entry is equally cheap to recompute and study
// sweeps revisit keys uniformly.
func (c *Cache) SetMaxEntries(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = n
	c.evictLocked()
}

func (c *Cache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for len(c.m) > c.max {
		for k := range c.m {
			delete(c.m, k)
			c.evictions.Add(1)
			mCacheEvictions.Inc()
			break
		}
	}
}

// Len reports the number of memoized renders.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// CacheStats is a snapshot of the cache's behavior counters.
type CacheStats struct {
	// Hits counts lookups served from the memo map.
	Hits int64
	// Misses counts lookups that ran the render themselves.
	Misses int64
	// Waits counts lookups that joined another goroutine's in-progress
	// render instead of starting their own.
	Waits int64
	// Evictions counts entries dropped by the SetMaxEntries bound.
	Evictions int64
	// Entries is the current number of memoized renders.
	Entries int
}

// HitRatio returns the fraction of lookups that avoided a render (hits and
// singleflight waits over all lookups), or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Waits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Waits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.m)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Waits:     c.waits.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

// SetShadow attaches a shadow auditor that samples this cache's miss-path
// renders through the lockstep engine comparison (nil detaches). Audits run
// synchronously inside the singleflight, so the 1-in-N sampling rate is the
// latency control.
func (c *Cache) SetShadow(a *ShadowAuditor) { c.shadow.Store(a) }

// Shadow returns the attached shadow auditor, if any.
func (c *Cache) Shadow() *ShadowAuditor { return c.shadow.Load() }

// Run returns the fingerprint for (stackKey, id, offset), rendering through
// r on a cache miss. stackKey must uniquely identify r's traits: two runners
// with different traits must never share a key.
func (c *Cache) Run(stackKey string, r *Runner, id ID, offset int) (Fingerprint, error) {
	return c.Do(stackKey, id, offset, func() (Fingerprint, error) {
		fp, err := r.Run(id, offset)
		if err == nil {
			if a := c.shadow.Load(); a != nil {
				a.MaybeAudit(stackKey, r, id, offset)
			}
		}
		return fp, err
	})
}

// Do returns the memoized fingerprint for (stackKey, id, offset), invoking
// render on a miss. Concurrent misses on the same key are collapsed: one
// caller renders, the rest block until it finishes and share its result.
// Errors are returned to every waiter but never cached — a later lookup
// retries the render.
func (c *Cache) Do(stackKey string, id ID, offset int, render func() (Fingerprint, error)) (Fingerprint, error) {
	k := cacheKey{stack: stackKey, vector: id, offset: offset}

	c.mu.Lock()
	if fp, ok := c.m[k]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		mCacheHits.Inc()
		return fp, nil
	}
	if call, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		c.waits.Add(1)
		mCacheWaits.Inc()
		<-call.done
		return call.fp, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[k] = call
	c.mu.Unlock()

	c.misses.Add(1)
	mCacheMisses.Inc()
	call.fp, call.err = render()

	c.mu.Lock()
	delete(c.inflight, k)
	if call.err == nil {
		c.m[k] = call.fp
		c.evictLocked()
	}
	c.mu.Unlock()
	close(call.done)
	return call.fp, call.err
}
