package vectors

import "sync"

// Cache memoizes fingerprints by (audio-stack key, vector, capture offset).
// Rendering is bit-deterministic given those three inputs (asserted by the
// engine's tests), so memoization is exact: a study over thousands of users
// re-renders only once per distinct platform class and capture state,
// turning an O(users × iterations) rendering bill into O(platform classes ×
// offsets). Safe for concurrent use.
type Cache struct {
	mu sync.RWMutex
	m  map[cacheKey]Fingerprint
}

type cacheKey struct {
	stack  string
	vector ID
	offset int
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]Fingerprint)}
}

// Len reports the number of memoized renders.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Run returns the fingerprint for (stackKey, id, offset), rendering through
// r on a cache miss. stackKey must uniquely identify r's traits: two runners
// with different traits must never share a key.
func (c *Cache) Run(stackKey string, r *Runner, id ID, offset int) (Fingerprint, error) {
	k := cacheKey{stack: stackKey, vector: id, offset: offset}
	c.mu.RLock()
	fp, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		mCacheHits.Inc()
		return fp, nil
	}
	mCacheMisses.Inc()
	fp, err := r.Run(id, offset)
	if err != nil {
		return Fingerprint{}, err
	}
	c.mu.Lock()
	c.m[k] = fp
	c.mu.Unlock()
	return fp, nil
}
