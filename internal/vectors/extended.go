package vectors

import (
	"fmt"
	"math"

	"repro/internal/webaudio"
)

// Extension vectors: the paper's §5 closes by listing "other potential
// factors" as future work, and its related work surveys alternative audio
// schematics. These two vectors probe engine stages the original seven do
// not touch — the BiquadFilter's IIR coefficient path and the WaveShaper's
// interpolation path — wired in the same Fig. 6 style (signal → shaping →
// analyser/compressor tail).
const (
	// BiquadSweep drives a sawtooth through a resonant lowpass whose cutoff
	// ramps across the spectrum, then fingerprints the hybrid tail.
	BiquadSweep ID = 100 + iota
	// Shaper drives the classic 10 kHz triangle through a nonlinear
	// transfer curve before the hybrid tail.
	Shaper
)

// Extended lists the extension vectors (not part of the paper's seven).
var Extended = []ID{BiquadSweep, Shaper}

func extendedString(id ID) (string, bool) {
	switch id {
	case BiquadSweep:
		return "Biquad Sweep", true
	case Shaper:
		return "Shaper", true
	}
	return "", false
}

// RunExtended executes an extension vector (same contract as Run).
func (r *Runner) RunExtended(id ID, captureOffset int) (Fingerprint, error) {
	if captureOffset < 0 {
		return Fingerprint{}, fmt.Errorf("vectors: negative capture offset %d", captureOffset)
	}
	return timeRender(id, func() (Fingerprint, error) { return r.renderExtended(id, captureOffset) })
}

func (r *Runner) renderExtended(id ID, captureOffset int) (Fingerprint, error) {
	rt := r.newRealtime()
	signal, err := buildExtendedSignal(rt, id)
	if err != nil {
		return Fingerprint{}, err
	}
	tail, err := buildHybridTail(rt, signal)
	if err != nil {
		return Fingerprint{}, err
	}
	if err := rt.CaptureAfter(captureBaseQuanta, captureOffset); err != nil {
		return Fingerprint{}, err
	}
	return tail.fingerprint(id, r.digest)
}

// buildExtendedSignal wires the signal stage of one extension vector.
func buildExtendedSignal(rt *webaudio.RealtimeSim, id ID) (webaudio.Node, error) {
	var signal webaudio.Node

	switch id {
	case BiquadSweep:
		osc := rt.NewOscillator(webaudio.Sawtooth, 440)
		osc.Start(0)
		f := rt.NewBiquadFilter(webaudio.Lowpass)
		f.Q.SetValue(8)
		f.Frequency.SetValueAtTime(200, 0)
		f.Frequency.ExponentialRampToValueAtTime(12000, 0.25)
		webaudio.Connect(osc, f)
		signal = f

	case Shaper:
		osc := rt.NewOscillator(webaudio.Triangle, toneHz)
		osc.Start(0)
		ws := rt.NewWaveShaper()
		// A tanh-style soft clipper sampled at 257 points (a curve shape
		// distortion demos ubiquitously use).
		curve := make([]float32, 257)
		for i := range curve {
			x := float64(i)/128 - 1
			curve[i] = float32(math.Tanh(3 * x))
		}
		if err := ws.SetCurve(curve); err != nil {
			return nil, err
		}
		webaudio.Connect(osc, ws)
		signal = ws

	default:
		return nil, fmt.Errorf("vectors: %d is not an extension vector", int(id))
	}

	return signal, nil
}
