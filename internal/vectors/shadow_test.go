package vectors

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/webaudio"
)

func testAuditor(t *testing.T, every int) *ShadowAuditor {
	t.Helper()
	return NewShadowAuditor(ShadowConfig{
		Every:    every,
		RingSize: 8,
		Registry: obs.NewRegistry(),
	})
}

func TestShadowAuditCleanEnginesAgree(t *testing.T) {
	a := testAuditor(t, 1)
	r := NewRunner(webaudio.DefaultTraits(), 44100)
	for _, id := range []ID{DC, FFT, Hybrid} {
		if rec := a.Audit("stack-a", r, id, 0); rec != nil {
			t.Fatalf("%v: healthy engines diverged: %+v", id, rec.Divergence)
		}
	}
	s := a.Summary()
	if s.Checks != 3 || s.Divergences != 0 || s.Errors != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestShadowAuditCatchesBrokenKernel(t *testing.T) {
	webaudio.SetBlockFault("compressor", 42, 1<<18)
	defer webaudio.SetBlockFault("", 0, 0)

	a := testAuditor(t, 1)
	r := NewRunner(webaudio.DefaultTraits(), 44100)
	rec := a.Audit("stack-broken", r, DC, 0)
	if rec == nil {
		t.Fatal("broken compressor kernel not caught")
	}
	d := rec.Divergence
	if d.Op != "compressor" {
		t.Fatalf("offending op = %q, want compressor", d.Op)
	}
	if d.Sample != 42 {
		t.Fatalf("sample = %d, want 42", d.Sample)
	}
	if rec.Vector != "DC" || rec.StackKey != "stack-broken" {
		t.Fatalf("record = %+v", rec)
	}

	s := a.Summary()
	if s.Divergences != 1 {
		t.Fatalf("divergences = %d", s.Divergences)
	}
	if len(s.Records) != 1 {
		t.Fatalf("records = %d", len(s.Records))
	}

	// The per-kernel first-offset histogram sees the absolute frame offset.
	h := a.reg.Histogram("vectors_divergence_first_offset_frames", "",
		divergenceOffsetBuckets(), obs.Labels{"op": "compressor"})
	if h.Count() != 1 {
		t.Fatalf("offset histogram count = %d", h.Count())
	}
}

func TestShadowRingBoundsRecords(t *testing.T) {
	webaudio.SetBlockFault("compressor", 0, 1<<16)
	defer webaudio.SetBlockFault("", 0, 0)
	a := testAuditor(t, 1)
	r := NewRunner(webaudio.DefaultTraits(), 44100)
	for i := 0; i < 12; i++ {
		a.Audit("s", r, DC, i)
	}
	recs := a.Records()
	if len(recs) != 8 {
		t.Fatalf("ring retained %d records, want 8", len(recs))
	}
	// Oldest-first: the first retained audit is offset 4 of 0..11.
	if recs[0].Offset != 4 || recs[7].Offset != 11 {
		t.Fatalf("ring order: first=%d last=%d", recs[0].Offset, recs[7].Offset)
	}
}

func TestSampledIsDeterministicAndCoversKeys(t *testing.T) {
	a := testAuditor(t, 4)
	var sampled int
	for i := 0; i < 256; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		s1 := a.Sampled(key, FFT, i)
		s2 := a.Sampled(key, FFT, i)
		if s1 != s2 {
			t.Fatal("sampling decision not deterministic")
		}
		if s1 {
			sampled++
		}
	}
	// 1-in-4 hashing over 256 keys: expect roughly 64, allow wide slack.
	if sampled < 16 || sampled > 160 {
		t.Fatalf("sampled %d of 256 keys at 1-in-4", sampled)
	}
	if !testAuditor(t, 1).Sampled("anything", DC, 0) {
		t.Fatal("Every=1 must sample everything")
	}
}

func TestCacheShadowHookAuditsMissPath(t *testing.T) {
	a := testAuditor(t, 1)
	c := NewCache()
	c.SetShadow(a)
	if c.Shadow() != a {
		t.Fatal("Shadow() accessor broken")
	}
	r := NewRunner(webaudio.DefaultTraits(), 44100)

	if _, err := c.Run("stack-a", r, DC, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.Summary().Checks; got != 1 {
		t.Fatalf("miss-path audits = %d, want 1", got)
	}
	// A cache hit must not re-audit.
	if _, err := c.Run("stack-a", r, DC, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.Summary().Checks; got != 1 {
		t.Fatalf("hit-path triggered audit: checks = %d", got)
	}
}

func TestShadowHandlerServesSummary(t *testing.T) {
	webaudio.SetBlockFault("gain", 3, 1<<15)
	defer webaudio.SetBlockFault("", 0, 0)
	a := testAuditor(t, 1)
	r := NewRunner(webaudio.DefaultTraits(), 44100)
	a.Audit("stack-x", r, FFT, 2)

	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s ShadowSummary
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Divergences != 1 || len(s.Records) != 1 {
		t.Fatalf("summary over HTTP = %+v", s)
	}
	rec := s.Records[0]
	if rec.Divergence.Op != "gain" || rec.Vector != "FFT" || rec.Offset != 2 {
		t.Fatalf("record = %+v", rec)
	}
}
