package vectors_test

import (
	"testing"

	"repro/internal/population"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

// TestEnginesBitIdenticalAcrossPopulation is the vector-level gate on the
// block engine: for a sample of simulated devices, every fingerprint a
// vector produces must be identical under the block and per-sample
// reference engines — same hash, same scalar summary. The cache keys
// fingerprints by platform alone, so this equivalence is what makes the
// engine flag invisible to every consumer of the package.
func TestEnginesBitIdenticalAcrossPopulation(t *testing.T) {
	devices := population.Sample(population.Config{Seed: 71, N: 6})
	ids := []vectors.ID{vectors.DC, vectors.FFT, vectors.AM, vectors.MergedSignals}
	offsets := []int{0, 2}

	prev := webaudio.SetDefaultEngine(webaudio.EngineBlock)
	defer webaudio.SetDefaultEngine(prev)

	for _, d := range devices {
		r := vectors.NewRunner(d.AudioTraits(), 0)
		for _, id := range ids {
			for _, off := range offsets {
				webaudio.SetDefaultEngine(webaudio.EngineBlock)
				blk, err := r.Run(id, off)
				if err != nil {
					t.Fatalf("%s %v offset %d (block): %v", d.ID, id, off, err)
				}
				webaudio.SetDefaultEngine(webaudio.EngineReference)
				ref, err := r.Run(id, off)
				if err != nil {
					t.Fatalf("%s %v offset %d (reference): %v", d.ID, id, off, err)
				}
				if blk.Hash != ref.Hash || blk.Sum != ref.Sum {
					t.Errorf("%s %v offset %d: block (%s, %v) != reference (%s, %v)",
						d.ID, id, off, blk.Hash, blk.Sum, ref.Hash, ref.Sum)
				}
			}
		}
	}
}
