package vectors

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/webaudio"
)

// Shadow auditing: the block DSP engine's bit-identity to the per-sample
// reference engine is a correctness invariant every entropy number in the
// study rests on. The differential test suite enforces it at test time; the
// ShadowAuditor enforces it continuously in production by re-rendering a
// deterministic 1-in-N sample of cache-miss renders through BOTH engines in
// lockstep and comparing every node's output down to the Float32bits. A
// divergence is attributed to a specific compiled op, quantum and sample,
// exported as a counter the watch layer alerts on, and retained in a bounded
// ring of flight records dumpable at /debug/render/divergence.

// FlightRecord is one confirmed engine divergence with everything needed to
// reproduce it: the platform-class key, the vector and capture state, and
// the op-level attribution from the lockstep comparison.
type FlightRecord struct {
	// Time is when the divergence was observed.
	Time time.Time `json:"time"`
	// StackKey identifies the audio stack (trait corner) being rendered.
	StackKey string `json:"stack_key"`
	// Vector is the fingerprinting vector whose graph diverged.
	Vector string `json:"vector"`
	// Offset is the capture offset of the sampled render.
	Offset int `json:"capture_offset"`
	// SampleRate is the runner's context rate.
	SampleRate float64 `json:"sample_rate"`
	// Engines names the pair compared (got vs want).
	Engines string `json:"engines"`
	// Divergence locates the first mismatch: op index in the compiled
	// program, node label, quantum, sample and the differing bits.
	Divergence webaudio.Divergence `json:"divergence"`
}

// ShadowConfig parameterizes NewShadowAuditor.
type ShadowConfig struct {
	// Every samples 1 render in Every cache misses (deterministically, by
	// key hash — the same key is always or never audited). Default 8;
	// 1 audits everything.
	Every int
	// RingSize bounds retained flight records (default 64, oldest evicted).
	RingSize int
	// Registry receives the audit metrics; nil uses obs.Default.
	Registry *obs.Registry
	// MaxQuanta caps the lockstep window per audit (default: the sampled
	// render's own length, which DC bounds at 64 and the FFT family at
	// captureBaseQuanta+offset).
	MaxQuanta int
}

// ShadowAuditor re-renders sampled production renders through the block and
// reference engines in lockstep and records any bit divergence. Safe for
// concurrent use.
type ShadowAuditor struct {
	every     int
	ringSize  int
	maxQuanta int

	checks   *obs.Counter
	diverged *obs.Counter
	errs     *obs.Counter
	reg      *obs.Registry

	mu   sync.Mutex
	ring []FlightRecord
	next int
	full bool
}

// NewShadowAuditor builds an auditor and registers its metrics.
func NewShadowAuditor(cfg ShadowConfig) *ShadowAuditor {
	if cfg.Every <= 0 {
		cfg.Every = 8
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	return &ShadowAuditor{
		every:     cfg.Every,
		ringSize:  cfg.RingSize,
		maxQuanta: cfg.MaxQuanta,
		reg:       cfg.Registry,
		checks: cfg.Registry.Counter("vectors_shadow_checks_total",
			"production renders re-rendered through the lockstep engine comparison", nil),
		diverged: cfg.Registry.Counter("vectors_render_divergence_total",
			"confirmed block-vs-reference engine divergences", nil),
		errs: cfg.Registry.Counter("vectors_shadow_errors_total",
			"shadow audits that failed to build or render the probe graphs", nil),
	}
}

// Sampled reports whether (stackKey, id, offset) falls in the audit sample.
// Deterministic: the decision depends only on the key, so re-renders of the
// same key are audited consistently and a study run's audit set is
// reproducible.
func (a *ShadowAuditor) Sampled(stackKey string, id ID, offset int) bool {
	if a.every <= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(stackKey))
	fmt.Fprintf(h, "|%d|%d", int(id), offset)
	return h.Sum64()%uint64(a.every) == 0
}

// MaybeAudit runs the lockstep audit if the key is sampled. Called
// synchronously from the cache miss path: the audit re-renders the graph
// twice, so sampling (ShadowConfig.Every) is the cost control.
func (a *ShadowAuditor) MaybeAudit(stackKey string, r *Runner, id ID, offset int) {
	if !a.Sampled(stackKey, id, offset) {
		return
	}
	a.Audit(stackKey, r, id, offset)
}

// Audit re-renders (id, offset) on r's audio stack under the block and
// reference engines in lockstep and records the first divergence, if any.
// Returns the divergence record for callers that want it (nil when the
// engines agree).
func (a *ShadowAuditor) Audit(stackKey string, r *Runner, id ID, offset int) *FlightRecord {
	a.checks.Inc()
	got, quanta, err := r.probe(id, offset, webaudio.EngineBlock)
	if err != nil {
		a.errs.Inc()
		return nil
	}
	want, _, err := r.probe(id, offset, webaudio.EngineReference)
	if err != nil {
		a.errs.Inc()
		return nil
	}
	if a.maxQuanta > 0 && quanta > a.maxQuanta {
		quanta = a.maxQuanta
	}
	div, err := webaudio.LockstepCompare(got, want, quanta)
	if err != nil {
		a.errs.Inc()
		return nil
	}
	if div == nil {
		return nil
	}
	a.diverged.Inc()
	a.observeDivergence(div)
	rec := FlightRecord{
		Time:       time.Now().UTC(),
		StackKey:   stackKey,
		Vector:     id.String(),
		Offset:     offset,
		SampleRate: r.rate,
		Engines:    "block vs reference",
		Divergence: *div,
	}
	a.mu.Lock()
	if len(a.ring) < a.ringSize {
		a.ring = append(a.ring, rec)
	} else {
		a.ring[a.next] = rec
		a.full = true
	}
	a.next = (a.next + 1) % a.ringSize
	a.mu.Unlock()
	return &rec
}

// divergenceOffsetBuckets cover the absolute frame offset of a first
// divergence: within the first quantum, early in the render, or deep into
// the capture window (the FFT family renders 96+ quanta ≈ 12k frames).
func divergenceOffsetBuckets() []float64 {
	return []float64{128, 256, 512, 1024, 2048, 4096, 8192, 16384}
}

// observeDivergence records where in the render the op class first broke.
func (a *ShadowAuditor) observeDivergence(d *webaudio.Divergence) {
	op := d.Op
	if i := strings.IndexByte(op, ':'); i >= 0 {
		op = op[:i]
	}
	a.reg.Histogram("vectors_divergence_first_offset_frames",
		"absolute frame offset of the first diverging sample, by op class",
		divergenceOffsetBuckets(), obs.Labels{"op": op}).
		Observe(float64(d.Quantum*webaudio.RenderQuantum + d.Sample))
}

// Records returns the retained flight records, oldest first.
func (a *ShadowAuditor) Records() []FlightRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FlightRecord, 0, len(a.ring))
	if a.full {
		out = append(out, a.ring[a.next:]...)
		out = append(out, a.ring[:a.next]...)
		return out
	}
	return append(out, a.ring...)
}

// ShadowSummary is the flight-recorder dump served by Handler.
type ShadowSummary struct {
	// SampleEvery is the configured 1-in-N audit rate.
	SampleEvery int `json:"sample_every"`
	// Checks counts completed lockstep audits.
	Checks int64 `json:"checks"`
	// Divergences counts confirmed engine mismatches.
	Divergences int64 `json:"divergences"`
	// Errors counts audits that failed before comparison.
	Errors int64 `json:"errors"`
	// Records lists retained flight records, oldest first.
	Records []FlightRecord `json:"records"`
}

// Summary snapshots the auditor's state.
func (a *ShadowAuditor) Summary() ShadowSummary {
	return ShadowSummary{
		SampleEvery: a.every,
		Checks:      a.checks.Value(),
		Divergences: a.diverged.Value(),
		Errors:      a.errs.Value(),
		Records:     a.Records(),
	}
}

// Handler serves the flight-recorder dump (GET → ShadowSummary JSON).
func (a *ShadowAuditor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(a.Summary())
	})
}

// probe builds the vector's graph on a fresh context pinned to engine e and
// returns the context plus the production render's quantum count — the
// lockstep window that covers exactly what a real render executes.
func (r *Runner) probe(id ID, offset int, e webaudio.Engine) (*webaudio.Context, int, error) {
	if id == DC {
		oc := webaudio.NewOfflineContext(dcRenderFrames, 44100, r.traits)
		oc.SetEngine(e)
		buildDCGraph(oc.Context)
		return oc.Context, dcRenderFrames / webaudio.RenderQuantum, nil
	}

	rt := webaudio.NewRealtimeSim(r.rate, r.traits)
	rt.SetEngine(e)
	quanta := captureBaseQuanta + offset
	switch {
	case id == FFT:
		if _, err := buildFFTGraph(rt); err != nil {
			return nil, 0, err
		}
	case id == Hybrid || id == CustomSignal || id == MergedSignals || id == AM || id == FM:
		signal, err := buildHybridSignal(rt, id)
		if err != nil {
			return nil, 0, err
		}
		if _, err := buildHybridTail(rt, signal); err != nil {
			return nil, 0, err
		}
	default:
		signal, err := buildExtendedSignal(rt, id)
		if err != nil {
			return nil, 0, err
		}
		if _, err := buildHybridTail(rt, signal); err != nil {
			return nil, 0, err
		}
	}
	return rt.Context, quanta, nil
}
