package vectors

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/webaudio"
)

func TestExtendedVectorsProduceFingerprints(t *testing.T) {
	r := defaultRunner()
	seen := map[string]ID{}
	for _, id := range Extended {
		fp, err := r.RunExtended(id, 0)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if fp.Vector != id || len(fp.Hash) != 64 || fp.Sum == 0 {
			t.Errorf("%v: bad fingerprint %+v", id, fp)
		}
		if prev, dup := seen[fp.Hash]; dup {
			t.Errorf("%v collides with %v", id, prev)
		}
		seen[fp.Hash] = id
	}
}

func TestExtendedNamesRoundTrip(t *testing.T) {
	for _, id := range Extended {
		name := id.String()
		if name == "" || name[0] == 'I' {
			t.Errorf("extension vector %d unnamed: %q", int(id), name)
		}
		back, err := ParseID(name)
		if err != nil || back != id {
			t.Errorf("ParseID(%q) = %v, %v", name, back, err)
		}
	}
}

func TestExtendedVectorsPlatformSensitive(t *testing.T) {
	ref := defaultRunner()
	tr := webaudio.DefaultTraits()
	tr.Kernel = mathx.Fdlib
	alt := NewRunner(tr, 0)
	for _, id := range Extended {
		a, err := ref.RunExtended(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := alt.RunExtended(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Hash == b.Hash {
			t.Errorf("%v: identical across kernels — extension vector inert", id)
		}
	}
}

func TestExtendedVectorsDeterministicAndFickle(t *testing.T) {
	for _, id := range Extended {
		a, err := defaultRunner().RunExtended(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := defaultRunner().RunExtended(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Hash != b.Hash {
			t.Errorf("%v: nondeterministic at fixed offset", id)
		}
		c, err := defaultRunner().RunExtended(id, 4)
		if err != nil {
			t.Fatal(err)
		}
		if c.Hash == a.Hash {
			t.Errorf("%v: insensitive to capture offset", id)
		}
	}
	if _, err := defaultRunner().RunExtended(DC, 0); err == nil {
		t.Error("core vector accepted by RunExtended")
	}
	if _, err := defaultRunner().RunExtended(BiquadSweep, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func BenchmarkExtendedVectors(b *testing.B) {
	r := defaultRunner()
	for _, id := range Extended {
		b.Run(id.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.RunExtended(id, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
