package vectors

import (
	"time"

	"repro/internal/obs"
)

// Per-vector render telemetry on the shared registry: how many times each
// vector rendered, how long a render takes end to end (graph build +
// quanta + hash), and how the memoization cache behaves. Label cardinality
// is bounded by the vector set (9 names).
var (
	mCacheHits = obs.Default.Counter("vectors_cache_hits_total",
		"memoized fingerprint renders served from cache", nil)
	mCacheMisses = obs.Default.Counter("vectors_cache_misses_total",
		"fingerprint renders that had to run the engine", nil)
)

func renderObserved(id ID, elapsed time.Duration) {
	labels := obs.Labels{"vector": id.String()}
	obs.Default.Counter("vectors_renders_total",
		"completed vector renders", labels).Inc()
	obs.Default.Histogram("vectors_render_duration_seconds",
		"wall time of one vector render", obs.LatencyBuckets(), labels).
		Observe(elapsed.Seconds())
}

// timeRender wraps a render function with duration telemetry.
func timeRender(id ID, fn func() (Fingerprint, error)) (Fingerprint, error) {
	start := time.Now()
	fp, err := fn()
	if err == nil {
		renderObserved(id, time.Since(start))
	}
	return fp, err
}
