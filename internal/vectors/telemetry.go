package vectors

import (
	"time"

	"repro/internal/obs"
)

// Per-vector render telemetry on the shared registry: how many times each
// vector rendered, how long a render takes end to end (graph build +
// quanta + hash), and how the memoization cache behaves. Label cardinality
// is bounded by the vector set (9 names).
var (
	mCacheHits = obs.Default.Counter("vectors_cache_hits_total",
		"memoized fingerprint renders served from cache", nil)
	mCacheMisses = obs.Default.Counter("vectors_cache_misses_total",
		"fingerprint renders that had to run the engine", nil)
	mCacheWaits = obs.Default.Counter("vectors_cache_singleflight_waits_total",
		"lookups that joined an in-progress render instead of starting one", nil)
	mCacheEvictions = obs.Default.Counter("vectors_cache_evictions_total",
		"memoized renders dropped by the cache entry bound", nil)
)

func init() {
	// Process-wide hit ratio across every Cache instance: the fraction of
	// lookups that avoided running the engine. Registered once at package
	// init, so sharing one study.Config.RenderCache across campaigns (or
	// constructing many Caches) never duplicates the series.
	obs.Default.GaugeFunc("vectors_cache_hit_ratio",
		"fraction of cache lookups served without rendering", nil,
		func() float64 {
			return hitRatio(mCacheHits.Value()+mCacheWaits.Value(), mCacheMisses.Value())
		})
}

// hitRatio is served/(served+misses), defined as 0 — not NaN — before the
// first lookup so a fresh process scrapes clean and dashboards don't gap.
func hitRatio(served, misses int64) float64 {
	total := served + misses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

func renderObserved(id ID, elapsed time.Duration) {
	labels := obs.Labels{"vector": id.String()}
	obs.Default.Counter("vectors_renders_total",
		"completed vector renders", labels).Inc()
	obs.Default.Histogram("vectors_render_duration_seconds",
		"wall time of one vector render", obs.LatencyBuckets(), labels).
		Observe(elapsed.Seconds())
}

// timeRender wraps a render function with duration telemetry.
func timeRender(id ID, fn func() (Fingerprint, error)) (Fingerprint, error) {
	start := time.Now()
	fp, err := fn()
	if err == nil {
		renderObserved(id, time.Since(start))
	}
	return fp, err
}
