package vectors

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/mathx"
	"repro/internal/webaudio"
)

func defaultRunner() *Runner { return NewRunner(webaudio.DefaultTraits(), 0) }

func TestIDStringAndParse(t *testing.T) {
	for _, id := range All {
		s := id.String()
		if strings.HasPrefix(s, "ID(") {
			t.Errorf("vector %d has no name", int(id))
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Errorf("ParseID(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := ParseID("bogus"); err == nil {
		t.Error("ParseID accepted bogus name")
	}
	if s := ID(99).String(); s != "ID(99)" {
		t.Errorf("unknown ID string = %q", s)
	}
}

func TestAllVectorsProduceFingerprints(t *testing.T) {
	r := defaultRunner()
	fps, err := r.RunAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 7 {
		t.Fatalf("RunAll returned %d fingerprints", len(fps))
	}
	seen := map[string]ID{}
	for i, fp := range fps {
		if fp.Vector != All[i] {
			t.Errorf("fingerprint %d has vector %v, want %v", i, fp.Vector, All[i])
		}
		if len(fp.Hash) != 64 {
			t.Errorf("%v: hash length %d, want 64 hex chars", fp.Vector, len(fp.Hash))
		}
		if prev, dup := seen[fp.Hash]; dup {
			t.Errorf("vectors %v and %v produced the same hash", prev, fp.Vector)
		}
		seen[fp.Hash] = fp.Vector
		if fp.Sum == 0 {
			t.Errorf("%v: zero summary — graph produced silence?", fp.Vector)
		}
	}
}

// TestDCDeterministicAcrossOffsets: DC ignores capture offsets entirely —
// the property that makes it the only perfectly stable vector (Table 1).
func TestDCDeterministicAcrossOffsets(t *testing.T) {
	r := defaultRunner()
	base, err := r.Run(DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{1, 5, 25} {
		fp, err := r.Run(DC, off)
		if err != nil {
			t.Fatal(err)
		}
		if fp.Hash != base.Hash {
			t.Errorf("DC hash changed with capture offset %d", off)
		}
	}
}

// TestFFTBasedVectorsVaryWithOffset: every analyser-path vector must yield a
// different fingerprint when the capture point shifts — the fickleness
// mechanism.
func TestFFTBasedVectorsVaryWithOffset(t *testing.T) {
	r := defaultRunner()
	for _, id := range FFTBased {
		a, err := r.Run(id, 0)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		b, err := r.Run(id, 4)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if a.Hash == b.Hash {
			t.Errorf("%v: identical hash across capture offsets", id)
		}
	}
}

// TestRepeatabilityAtFixedOffset: same traits and offset ⇒ same hash. This
// is what lets same-platform users collide in the collation graph.
func TestRepeatabilityAtFixedOffset(t *testing.T) {
	for _, id := range All {
		a, err := defaultRunner().Run(id, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := defaultRunner().Run(id, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a.Hash != b.Hash {
			t.Errorf("%v: nondeterministic at fixed offset", id)
		}
	}
}

// TestTraitsSeparateVectors: each platform-identity knob must separate at
// least the vectors it is supposed to affect.
func TestTraitsSeparateVectors(t *testing.T) {
	base := webaudio.DefaultTraits()

	variants := []struct {
		name    string
		mutate  func(*webaudio.Traits)
		affects []ID
	}{
		{
			name:    "kernel",
			mutate:  func(tr *webaudio.Traits) { tr.Kernel = mathx.Poly7 },
			affects: All,
		},
		{
			name:    "kneeEps",
			mutate:  func(tr *webaudio.Traits) { tr.CompressorKneeEps = 1e-4 },
			affects: []ID{DC, Hybrid, CustomSignal, MergedSignals, AM, FM},
		},
		{
			name:    "preDelay",
			mutate:  func(tr *webaudio.Traits) { tr.CompressorPreDelay = 260 },
			affects: []ID{DC, Hybrid},
		},
		{
			name:    "phaseOffset",
			mutate:  func(tr *webaudio.Traits) { tr.OscillatorPhaseOffset = 1e-4 },
			affects: All,
		},
		{
			name:    "fftKernel",
			mutate:  func(tr *webaudio.Traits) { tr.FFTKernel = mathx.Perturbed(mathx.Libm, "fft-alt", 3e-7) },
			affects: FFTBased,
		},
	}
	for _, v := range variants {
		tr := base
		v.mutate(&tr)
		mod := NewRunner(tr, 0)
		ref := defaultRunner()
		for _, id := range v.affects {
			a, err := ref.Run(id, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, err := mod.Run(id, 0)
			if err != nil {
				t.Fatal(err)
			}
			if a.Hash == b.Hash {
				t.Errorf("trait %s did not separate vector %v", v.name, id)
			}
		}
	}
}

// TestFFTKernelDoesNotAffectDC: the FFT-library axis must split FFT-path
// classes without touching DC — the mechanism by which the population has
// more distinct FFT fingerprints than DC ones.
func TestFFTKernelDoesNotAffectDC(t *testing.T) {
	tr := webaudio.DefaultTraits()
	tr.FFTKernel = mathx.Perturbed(mathx.Libm, "fft-alt2", 5e-7)
	a, err := defaultRunner().Run(DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(tr, 0).Run(DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Error("FFTKernel changed the DC fingerprint")
	}
}

func TestNegativeOffsetRejected(t *testing.T) {
	if _, err := defaultRunner().Run(FFT, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestCacheHitsAndKeySeparation(t *testing.T) {
	c := NewCache()
	r1 := defaultRunner()
	tr := webaudio.DefaultTraits()
	tr.Kernel = mathx.Fdlib
	r2 := NewRunner(tr, 0)

	a1, err := c.Run("stackA", r1, DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len %d after one run", c.Len())
	}
	a2, err := c.Run("stackA", r1, DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Hash != a2.Hash {
		t.Error("cache returned different fingerprint")
	}
	if c.Len() != 1 {
		t.Error("cache miss on identical key")
	}
	b, err := c.Run("stackB", r2, DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Hash == a1.Hash {
		t.Error("different stacks share a hash — key separation broken")
	}
	if c.Len() != 2 {
		t.Errorf("cache len %d, want 2", c.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	r := defaultRunner()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			if _, err := c.Run("stack", r, DC, 0); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("cache len %d, want 1", c.Len())
	}
}

func BenchmarkVectorDC(b *testing.B) {
	r := defaultRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(DC, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorHybrid(b *testing.B) {
	r := defaultRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(Hybrid, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllCached(b *testing.B) {
	c := NewCache()
	r := defaultRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range All {
			if _, err := c.Run("stack", r, id, i%4); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestMurmur3Hasher: the FingerprintJS-compatible digest yields 32-hex
// fingerprints that preserve the identity structure of the default SHA-256.
func TestMurmur3Hasher(t *testing.T) {
	sha := defaultRunner()
	mm := defaultRunner()
	mm.SetHasher(Murmur3)
	for _, id := range All {
		a, err := sha.Run(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mm.Run(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Hash) != 32 {
			t.Errorf("%v: murmur digest length %d, want 32", id, len(b.Hash))
		}
		if a.Hash == b.Hash {
			t.Errorf("%v: hashers produced identical strings", id)
		}
		// Determinism per hasher.
		b2, err := mm.Run(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if b.Hash != b2.Hash {
			t.Errorf("%v: murmur digest nondeterministic", id)
		}
	}
	// Different stacks still separate under Murmur3.
	tr := webaudio.DefaultTraits()
	tr.Kernel = mathx.Poly7
	other := NewRunner(tr, 0)
	other.SetHasher(Murmur3)
	a, _ := mm.Run(DC, 0)
	b, _ := other.Run(DC, 0)
	if a.Hash == b.Hash {
		t.Error("murmur digest failed to separate stacks")
	}
}
