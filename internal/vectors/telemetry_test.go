package vectors

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/webaudio"
)

// TestHitRatioNeverNaN: the gauge must scrape as 0 on a fresh process, not
// NaN (Prometheus text exposition would otherwise emit "NaN" and break
// dashboards that sum/average the series).
func TestHitRatioNeverNaN(t *testing.T) {
	if got := hitRatio(0, 0); got != 0 || math.IsNaN(got) {
		t.Fatalf("hitRatio(0, 0) = %v, want 0", got)
	}
	if got := hitRatio(3, 1); got != 0.75 {
		t.Fatalf("hitRatio(3, 1) = %v, want 0.75", got)
	}
	if got := hitRatio(0, 5); got != 0 {
		t.Fatalf("hitRatio(0, 5) = %v, want 0", got)
	}
}

// TestHitRatioGaugeRegistersOnce: the process-wide gauge is one series no
// matter how many Cache instances exist, and its scraped value is finite.
func TestHitRatioGaugeRegistersOnce(t *testing.T) {
	// Multiple caches sharing the package metrics, as when one RenderCache
	// spans the main and follow-up campaigns.
	a, b := NewCache(), NewCache()
	r := NewRunner(webaudio.DefaultTraits(), 44100)
	if _, err := a.Run("ratio-stack", r, DC, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run("ratio-stack", r, DC, 0); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := b.Run("ratio-stack-b", r, DC, 0); err != nil { // miss, cache b
		t.Fatal(err)
	}

	seen := 0
	for _, s := range obs.Default.Snapshot() {
		if s.Name != "vectors_cache_hit_ratio" {
			continue
		}
		seen++
		if math.IsNaN(s.Value) || s.Value < 0 || s.Value > 1 {
			t.Fatalf("vectors_cache_hit_ratio = %v, want finite in [0,1]", s.Value)
		}
	}
	if seen != 1 {
		t.Fatalf("vectors_cache_hit_ratio series count = %d, want exactly 1", seen)
	}
}
