// Package vectors implements the seven Web Audio fingerprinting vectors the
// paper studies (§2.1, Appendix B): the three known vectors — Dynamics
// Compressor (DC), Fast Fourier Transform (FFT) and Hybrid (DC+FFT) — and
// the four new ones the authors devised — Custom Signal, Merged Signals,
// Amplitude Modulation (AM) and Frequency Modulation (FM).
//
// Every vector builds its audio graph on the webaudio engine exactly as the
// corresponding browser script does (paper Figs. 1, 2, 6, 7, 8), renders it,
// and hashes the observed buffers with SHA-256. DC renders through a
// deterministic OfflineAudioContext; all other vectors observe a live
// (simulated) context whose capture timing depends on machine load — the
// captureOffset parameter — which is the mechanism behind the run-to-run
// fickleness the paper reports for every FFT-path vector.
package vectors

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/hashx"
	"repro/internal/webaudio"
)

// ID identifies one fingerprinting vector.
type ID int

// The seven vectors, in the paper's column order.
const (
	DC ID = iota
	FFT
	Hybrid
	CustomSignal
	MergedSignals
	AM
	FM
)

// All lists every vector in the paper's order.
var All = []ID{DC, FFT, Hybrid, CustomSignal, MergedSignals, AM, FM}

// FFTBased lists the six vectors whose pipeline includes an AnalyserNode
// (everything but DC); these are the vectors exhibiting fickleness.
var FFTBased = []ID{FFT, Hybrid, CustomSignal, MergedSignals, AM, FM}

// String returns the vector's name as used in the paper's tables.
func (id ID) String() string {
	switch id {
	case DC:
		return "DC"
	case FFT:
		return "FFT"
	case Hybrid:
		return "Hybrid"
	case CustomSignal:
		return "Custom Signal"
	case MergedSignals:
		return "Merged Signals"
	case AM:
		return "AM"
	case FM:
		return "FM"
	}
	if name, ok := extendedString(id); ok {
		return name
	}
	return fmt.Sprintf("ID(%d)", int(id))
}

// ParseID resolves a vector name (as printed by String) back to its ID.
func ParseID(s string) (ID, error) {
	for _, id := range All {
		if id.String() == s {
			return id, nil
		}
	}
	for _, id := range Extended {
		if id.String() == s {
			return id, nil
		}
	}
	return 0, fmt.Errorf("vectors: unknown vector %q", s)
}

// Fingerprint is the output of running one vector once.
type Fingerprint struct {
	// Vector identifies which method produced the fingerprint.
	Vector ID `json:"vector"`
	// Hash is the hex SHA-256 digest of the observed audio data — the
	// elementary fingerprint the collation graph operates on.
	Hash string `json:"hash"`
	// Sum is the paper-style scalar summary (Σ|x| of the DC render window,
	// or Σ of finite spectrum values for FFT captures); useful for
	// debugging and telemetry but not part of identity.
	Sum float64 `json:"sum"`
}

// Hasher selects the digest applied to observed audio buffers.
type Hasher int

const (
	// SHA256 is the default digest (64 hex chars).
	SHA256 Hasher = iota
	// Murmur3 is FingerprintJS's MurmurHash3 x64/128 (32 hex chars) — the
	// digest the in-the-wild scripts actually compute, for wire-compatible
	// fingerprint strings.
	Murmur3
)

// Runner executes fingerprinting vectors against one simulated audio stack.
// A Runner is cheap; construct one per (traits, sample rate) pair.
type Runner struct {
	traits webaudio.Traits
	rate   float64
	hasher Hasher

	// engine, when engineSet, pins the DSP engine this runner's contexts
	// render under instead of the process-wide default. The shadow auditor
	// uses this to re-render samples through the reference engine without
	// flipping webaudio.SetDefaultEngine under concurrent renders.
	engine    webaudio.Engine
	engineSet bool
}

// NewRunner returns a Runner for the given platform traits. A zero sample
// rate defaults to 44100 Hz.
func NewRunner(traits webaudio.Traits, sampleRate float64) *Runner {
	if sampleRate == 0 {
		sampleRate = 44100
	}
	return &Runner{traits: traits, rate: sampleRate}
}

// SetHasher selects the fingerprint digest (default SHA256).
func (r *Runner) SetHasher(h Hasher) { r.hasher = h }

// SetEngine pins the DSP engine this runner renders under (by default new
// contexts follow webaudio.DefaultEngine).
func (r *Runner) SetEngine(e webaudio.Engine) { r.engine, r.engineSet = e, true }

// newOffline constructs an offline context honoring the engine override.
func (r *Runner) newOffline(length int, rate float64) *webaudio.OfflineContext {
	oc := webaudio.NewOfflineContext(length, rate, r.traits)
	if r.engineSet {
		oc.SetEngine(r.engine)
	}
	return oc
}

// newRealtime constructs a realtime sim honoring the engine override.
func (r *Runner) newRealtime() *webaudio.RealtimeSim {
	rt := webaudio.NewRealtimeSim(r.rate, r.traits)
	if r.engineSet {
		rt.SetEngine(r.engine)
	}
	return rt
}

// digest hashes observed bytes with the runner's hasher.
func (r *Runner) digest(data []byte) string {
	if r.hasher == Murmur3 {
		return hashx.HexDigest(data, 31) // FingerprintJS's default seed
	}
	return hashBytes(data)
}

// Graph constants shared by the vectors, matching the published scripts.
const (
	toneHz = 10000 // triangle tone both classic vectors use
	// dcRenderFrames is the offline render length. The FingerprintJS DC
	// script renders one second; samples [4500, 5000) form the fingerprint
	// window, so rendering past that point is sufficient and equivalent.
	dcRenderFrames = 8192
	dcWindowStart  = 4500
	dcWindowEnd    = 5000
	// captureBaseQuanta is the nominal observation point of the live-context
	// vectors: the third ScriptProcessor event (3 × 4096 frames / 128).
	captureBaseQuanta = 96
	fftSize           = 2048
	spBufferSize      = 4096
)

// Run executes vector id. captureOffset is the load-induced scheduling slack
// (in render quanta) at the moment the script observes the graph; it is
// ignored by DC, whose offline render is deterministic.
func (r *Runner) Run(id ID, captureOffset int) (Fingerprint, error) {
	if captureOffset < 0 {
		return Fingerprint{}, fmt.Errorf("vectors: negative capture offset %d", captureOffset)
	}
	return timeRender(id, func() (Fingerprint, error) { return r.render(id, captureOffset) })
}

// render dispatches to the vector implementations (timing handled by Run).
func (r *Runner) render(id ID, captureOffset int) (Fingerprint, error) {
	switch id {
	case DC:
		return r.runDC()
	case FFT:
		return r.runFFT(captureOffset)
	case Hybrid:
		return r.runHybridFamily(Hybrid, captureOffset)
	case CustomSignal:
		return r.runHybridFamily(CustomSignal, captureOffset)
	case MergedSignals:
		return r.runHybridFamily(MergedSignals, captureOffset)
	case AM:
		return r.runHybridFamily(AM, captureOffset)
	case FM:
		return r.runHybridFamily(FM, captureOffset)
	}
	return Fingerprint{}, fmt.Errorf("vectors: unknown vector %d", int(id))
}

// RunAll executes every vector with the same capture offset and returns the
// fingerprints in All order.
func (r *Runner) RunAll(captureOffset int) ([]Fingerprint, error) {
	out := make([]Fingerprint, 0, len(All))
	for _, id := range All {
		fp, err := r.Run(id, captureOffset)
		if err != nil {
			return nil, err
		}
		out = append(out, fp)
	}
	return out, nil
}

// runDC implements the Dynamics Compressor vector (paper Fig. 1):
// OfflineAudioContext → triangle oscillator (10 kHz) → DynamicsCompressor →
// destination; the fingerprint hashes the rendered samples in [4500, 5000).
//
// Note the script *forces* the offline context to 44100 Hz
// (OfflineAudioContext(1, 44100, 44100)), so unlike the live-context vectors
// DC is immune to the device's native sample rate — one of the reasons the
// FFT-path vectors carry more entropy than DC in the paper's Table 2.
func (r *Runner) runDC() (Fingerprint, error) {
	oc := r.newOffline(dcRenderFrames, 44100)
	buildDCGraph(oc.Context)
	buf, err := oc.StartRendering()
	if err != nil {
		return Fingerprint{}, err
	}
	window := buf[dcWindowStart:dcWindowEnd]
	return Fingerprint{
		Vector: DC,
		Hash:   r.digest(dsp.Float32SliceToBytes(window)),
		Sum:    dsp.SumAbs(window),
	}, nil
}

// buildDCGraph wires the Fig. 1 graph (triangle oscillator →
// DynamicsCompressor → destination) on ctx and starts the source.
func buildDCGraph(ctx *webaudio.Context) {
	osc := ctx.NewOscillator(webaudio.Triangle, toneHz)
	comp := ctx.NewDynamicsCompressor()
	webaudio.Connect(osc, comp)
	webaudio.Connect(comp, ctx.Destination())
	osc.Start(0)
}

// runFFT implements the FFT vector (paper Fig. 2): live context → triangle
// oscillator (10 kHz) → AnalyserNode → ScriptProcessor → GainNode(0) →
// destination. The script hashes getFloatFrequencyData output from inside an
// audioprocess callback; which callback fires when the script looks is load-
// dependent, hence captureOffset.
func (r *Runner) runFFT(captureOffset int) (Fingerprint, error) {
	rt := r.newRealtime()
	an, err := buildFFTGraph(rt)
	if err != nil {
		return Fingerprint{}, err
	}
	if err := rt.CaptureAfter(captureBaseQuanta, captureOffset); err != nil {
		return Fingerprint{}, err
	}
	freq := make([]float32, an.FrequencyBinCount())
	if err := an.GetFloatFrequencyData(freq); err != nil {
		return Fingerprint{}, err
	}
	return Fingerprint{
		Vector: FFT,
		Hash:   r.digest(dsp.Float32SliceToBytes(freq)),
		Sum:    sumFinite(freq),
	}, nil
}

// buildFFTGraph wires the Fig. 2 graph (triangle oscillator → Analyser →
// ScriptProcessor → Gain(0) → destination) and returns the analyser tap.
func buildFFTGraph(rt *webaudio.RealtimeSim) (*webaudio.AnalyserNode, error) {
	osc := rt.NewOscillator(webaudio.Triangle, toneHz)
	an, err := rt.NewAnalyser(fftSize)
	if err != nil {
		return nil, err
	}
	sp, err := rt.NewScriptProcessor(spBufferSize)
	if err != nil {
		return nil, err
	}
	mute := rt.NewGain(0)
	webaudio.Connect(osc, an)
	webaudio.Connect(an, sp)
	webaudio.Connect(sp, mute)
	webaudio.Connect(mute, rt.Destination())
	osc.Start(0)
	return an, nil
}

// hybridTail wires signal → Analyser → DynamicsCompressor → ScriptProcessor
// → Gain(0) → destination (paper Fig. 6) and returns the taps needed for the
// fingerprint: the analyser and the script processor retaining the last
// compressor output buffer.
type hybridTail struct {
	analyser *webaudio.AnalyserNode
	lastBuf  []float32
}

func buildHybridTail(rt *webaudio.RealtimeSim, signal webaudio.Node) (*hybridTail, error) {
	an, err := rt.NewAnalyser(fftSize)
	if err != nil {
		return nil, err
	}
	comp := rt.NewDynamicsCompressor()
	sp, err := rt.NewScriptProcessor(spBufferSize)
	if err != nil {
		return nil, err
	}
	mute := rt.NewGain(0)
	webaudio.Connect(signal, an)
	webaudio.Connect(an, comp)
	webaudio.Connect(comp, sp)
	webaudio.Connect(sp, mute)
	webaudio.Connect(mute, rt.Destination())
	t := &hybridTail{analyser: an, lastBuf: make([]float32, spBufferSize)}
	sp.OnAudioProcess = func(e webaudio.AudioProcessEvent) {
		copy(t.lastBuf, e.InputBuffer)
	}
	return t, nil
}

// fingerprint reads the analyser spectrum plus the retained compressor
// buffer and hashes them together — the DC and FFT halves of the hybrid
// family.
func (t *hybridTail) fingerprint(id ID, digest func([]byte) string) (Fingerprint, error) {
	freq := make([]float32, t.analyser.FrequencyBinCount())
	if err := t.analyser.GetFloatFrequencyData(freq); err != nil {
		return Fingerprint{}, err
	}
	data := dsp.Float32SliceToBytes(freq)
	data = append(data, dsp.Float32SliceToBytes(t.lastBuf)...)
	return Fingerprint{
		Vector: id,
		Hash:   digest(data),
		Sum:    sumFinite(freq) + dsp.SumAbs(t.lastBuf),
	}, nil
}

// customWaveCoefficients are the fixed 12-element real/imag arrays of the
// Custom Signal vector: real values "randomly selected between 0 and 1" once
// at script-authoring time (constants thereafter, like the published code),
// imaginary values alternating between 0 and π/2.
func customWaveCoefficients() *webaudio.PeriodicWave {
	real := []float64{
		0.7264, 0.0835, 0.4138, 0.5515, 0.9284, 0.1931,
		0.6204, 0.3379, 0.8450, 0.0647, 0.4982, 0.7716,
	}
	imag := make([]float64, len(real))
	for i := range imag {
		if i%2 == 1 {
			imag[i] = math.Pi / 2
		}
	}
	return &webaudio.PeriodicWave{Real: real, Imag: imag}
}

// runHybridFamily implements Hybrid and the four derived vectors, which
// share the Fig. 6 tail and differ only in the signal feeding it:
//
//   - Hybrid: single triangle oscillator at 10 kHz (Fig. 6)
//   - CustomSignal: custom PeriodicWave oscillator (App. B)
//   - MergedSignals: sine 440 + square 1880 + triangle 10000 + sawtooth
//     22000 through a ChannelMerger (Fig. 7)
//   - AM: triangle 10 kHz and square 1880 Hz carriers, amplitude-modulated
//     by a 440 Hz sine through gain-parameter connections (Fig. 8)
//   - FM: the same arrangement with the modulator driving the carriers'
//     frequency parameters instead (App. B)
func (r *Runner) runHybridFamily(id ID, captureOffset int) (Fingerprint, error) {
	rt := r.newRealtime()
	signal, err := buildHybridSignal(rt, id)
	if err != nil {
		return Fingerprint{}, err
	}
	tail, err := buildHybridTail(rt, signal)
	if err != nil {
		return Fingerprint{}, err
	}
	if err := rt.CaptureAfter(captureBaseQuanta, captureOffset); err != nil {
		return Fingerprint{}, err
	}
	return tail.fingerprint(id, r.digest)
}

// buildHybridSignal wires the signal stage feeding the Fig. 6 tail for one
// hybrid-family vector and returns the node the tail should consume.
func buildHybridSignal(rt *webaudio.RealtimeSim, id ID) (webaudio.Node, error) {
	var signal webaudio.Node

	switch id {
	case Hybrid:
		osc := rt.NewOscillator(webaudio.Triangle, toneHz)
		osc.Start(0)
		signal = osc

	case CustomSignal:
		osc := rt.NewOscillator(webaudio.Custom, toneHz)
		osc.SetPeriodicWave(customWaveCoefficients())
		osc.Start(0)
		signal = osc

	case MergedSignals:
		merger := rt.NewChannelMerger()
		for _, src := range []struct {
			typ  webaudio.OscillatorType
			freq float64
		}{
			{webaudio.Sine, 440},
			{webaudio.Square, 1880},
			{webaudio.Triangle, 10000},
			{webaudio.Sawtooth, 22000},
		} {
			o := rt.NewOscillator(src.typ, src.freq)
			o.Start(0)
			webaudio.Connect(o, merger)
		}
		signal = merger

	case AM:
		// Carriers through unit gains whose gain params are modulated by a
		// 440 Hz sine scaled by a depth gain of 60 (Fig. 8's "Gain = 60").
		mod := rt.NewOscillator(webaudio.Sine, 440)
		mod.Start(0)
		depth := rt.NewGain(60)
		webaudio.Connect(mod, depth)
		mix := rt.NewChannelMerger()
		for _, src := range []struct {
			typ  webaudio.OscillatorType
			freq float64
		}{
			{webaudio.Triangle, toneHz},
			{webaudio.Square, 1880},
		} {
			o := rt.NewOscillator(src.typ, src.freq)
			o.Start(0)
			carrier := rt.NewGain(1) // Fig. 8's "Carrier Gain = 1"
			webaudio.ConnectParam(depth, carrier.Gain)
			webaudio.Connect(o, carrier)
			webaudio.Connect(carrier, mix)
		}
		signal = mix

	case FM:
		mod := rt.NewOscillator(webaudio.Sine, 440)
		mod.Start(0)
		depth := rt.NewGain(60)
		webaudio.Connect(mod, depth)
		mix := rt.NewChannelMerger()
		for _, src := range []struct {
			typ  webaudio.OscillatorType
			freq float64
		}{
			{webaudio.Triangle, toneHz},
			{webaudio.Square, 1880},
		} {
			o := rt.NewOscillator(src.typ, src.freq)
			webaudio.ConnectParam(depth, o.Frequency)
			o.Start(0)
			webaudio.Connect(o, mix)
		}
		signal = mix

	default:
		return nil, fmt.Errorf("vectors: %v is not in the hybrid family", id)
	}

	return signal, nil
}

// hashBytes returns the hex SHA-256 of data.
func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// sumFinite sums the finite entries of a spectrum (dB bins can be -Inf).
func sumFinite(v []float32) float64 {
	var s float64
	for _, x := range v {
		f := float64(x)
		if !math.IsInf(f, 0) && !math.IsNaN(f) {
			s += f
		}
	}
	return s
}
