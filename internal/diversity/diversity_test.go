package diversity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeUniform(t *testing.T) {
	// 4 users, 4 distinct values: entropy = 2 bits, normalized = 1.
	s := Summarize([]string{"a", "b", "c", "d"})
	if s.Users != 4 || s.Distinct != 4 || s.Unique != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.EntropyBits-2) > 1e-12 {
		t.Errorf("entropy = %g, want 2", s.EntropyBits)
	}
	if math.Abs(s.Normalized-1) > 1e-12 {
		t.Errorf("normalized = %g, want 1", s.Normalized)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	s := Summarize([]int{7, 7, 7, 7})
	if s.Distinct != 1 || s.Unique != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.EntropyBits != 0 || s.Normalized != 0 {
		t.Errorf("entropy = %g/%g, want 0", s.EntropyBits, s.Normalized)
	}
	one := Summarize([]int{3})
	if one.Normalized != 0 || one.EntropyBits != 0 {
		t.Errorf("single user entropy = %+v", one)
	}
}

func TestSummarizeSkewed(t *testing.T) {
	// 3 of one value, 1 of another: H = -(3/4 log 3/4 + 1/4 log 1/4).
	s := Summarize([]string{"x", "x", "x", "y"})
	want := -(0.75*math.Log2(0.75) + 0.25*math.Log2(0.25))
	if math.Abs(s.EntropyBits-want) > 1e-12 {
		t.Errorf("entropy = %g, want %g", s.EntropyBits, want)
	}
	if s.Unique != 1 {
		t.Errorf("unique = %d, want 1", s.Unique)
	}
}

// TestEntropyBounds: 0 ≤ H ≤ log2(n), normalized within [0,1].
func TestEntropyBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(1 + rng.Intn(n))
		}
		s := Summarize(vals)
		return s.EntropyBits >= 0 && s.EntropyBits <= math.Log2(float64(n))+1e-9 &&
			s.Normalized >= 0 && s.Normalized <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCombine(t *testing.T) {
	a := []string{"x", "x", "y"}
	b := []string{"1", "2", "2"}
	combo, err := Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(combo)
	if s.Distinct != 3 {
		t.Errorf("combined distinct = %d, want 3", s.Distinct)
	}
	// Combination diversity ≥ every component's (paper's §4 claim).
	if s.EntropyBits < Summarize(a).EntropyBits || s.EntropyBits < Summarize(b).EntropyBits {
		t.Error("combination entropy below a component's")
	}
	if _, err := Combine[string](); err == nil {
		t.Error("empty combine accepted")
	}
	if _, err := Combine(a, []string{"1"}); err == nil {
		t.Error("ragged combine accepted")
	}
}

// TestCombineMonotoneProperty: adding a vector never reduces entropy.
func TestCombineMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(5)
			b[i] = rng.Intn(5)
		}
		ca, err := Combine(a)
		if err != nil {
			return false
		}
		cab, err := Combine(a, b)
		if err != nil {
			return false
		}
		return Summarize(cab).EntropyBits >= Summarize(ca).EntropyBits-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCombineSeparatorAmbiguity(t *testing.T) {
	// Values that would collide under naive concatenation must not collide.
	a := []string{"ab", "a"}
	b := []string{"c", "bc"}
	combo, err := Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if combo[0] == combo[1] {
		t.Error("tuple encoding ambiguous: (ab,c) == (a,bc)")
	}
}

func TestAnonymitySets(t *testing.T) {
	sets := AnonymitySets([]string{"a", "a", "a", "b", "c", "c"})
	if sets[3] != 1 || sets[2] != 1 || sets[1] != 1 {
		t.Errorf("anonymity sets = %v", sets)
	}
}

func TestDistinctPerGroup(t *testing.T) {
	groups := []string{"win", "win", "mac", "mac", "mac"}
	vals := []string{"f1", "f1", "f2", "f3", "f2"}
	got, err := DistinctPerGroup(groups, vals)
	if err != nil {
		t.Fatal(err)
	}
	if got["win"] != 1 || got["mac"] != 2 {
		t.Errorf("DistinctPerGroup = %v", got)
	}
	if _, err := DistinctPerGroup([]string{"a"}, []string{"x", "y"}); err == nil {
		t.Error("ragged inputs accepted")
	}
	sizes := GroupSizes(groups)
	if sizes["win"] != 2 || sizes["mac"] != 3 {
		t.Errorf("GroupSizes = %v", sizes)
	}
}

func TestHistogramAndCDF(t *testing.T) {
	h := NewHistogram([]int{1, 1, 1, 2, 2, 5})
	counts, freqs := h.SortedBins()
	if len(counts) != 3 || counts[0] != 1 || counts[2] != 5 {
		t.Fatalf("bins = %v", counts)
	}
	if freqs[0] != 3 || freqs[1] != 2 || freqs[2] != 1 {
		t.Fatalf("freqs = %v", freqs)
	}
	_, cum := h.CDF()
	if math.Abs(cum[0]-0.5) > 1e-12 || math.Abs(cum[2]-1) > 1e-12 {
		t.Errorf("cdf = %v", cum)
	}
	// CDF must be nondecreasing and end at 1.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Error("CDF decreasing")
		}
	}
}

func BenchmarkSummarize2093(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]string, 2093)
	for i := range vals {
		vals[i] = string(rune('a' + rng.Intn(90)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(vals)
	}
}

// TestStableSummaryAgreement: SummarizeStable must agree with Summarize on
// every integer field exactly and on the entropy up to map-order ULP noise,
// and SummaryFromCounts over the tallied group sizes must be bit-identical
// to SummarizeStable — the property the streaming engine's snapshot rows
// rely on.
func TestStableSummaryAgreement(t *testing.T) {
	cases := [][]string{
		{},
		{"a"},
		{"a", "a", "a"},
		{"a", "b", "c", "d"},
		{"a", "a", "b", "b", "b", "c", "d", "d", "e", "f", "f", "f", "f"},
	}
	for i, values := range cases {
		plain := Summarize(values)
		stable := SummarizeStable(values)
		if stable.Users != plain.Users || stable.Distinct != plain.Distinct || stable.Unique != plain.Unique {
			t.Errorf("case %d: stable %+v vs plain %+v", i, stable, plain)
		}
		if d := stable.EntropyBits - plain.EntropyBits; d > 1e-12 || d < -1e-12 {
			t.Errorf("case %d: entropy %v vs %v", i, stable.EntropyBits, plain.EntropyBits)
		}
		counts := map[string]int{}
		for _, v := range values {
			counts[v]++
		}
		cs := make([]int, 0, len(counts))
		for _, c := range counts {
			cs = append(cs, c)
		}
		if got := SummaryFromCounts(cs); got != stable {
			t.Errorf("case %d: SummaryFromCounts %+v != SummarizeStable %+v", i, got, stable)
		}
		if got := NormalizedEntropyStable(values); got != stable.Normalized {
			t.Errorf("case %d: NormalizedEntropyStable %v != %v", i, got, stable.Normalized)
		}
	}
}

// TestSummaryFromCountsOrderIndependent: any permutation of the group-size
// multiset must produce the identical float, not merely a close one.
func TestSummaryFromCountsOrderIndependent(t *testing.T) {
	base := []int{5, 1, 7, 2, 2, 9, 1, 3}
	want := SummaryFromCounts(base)
	perm := []int{9, 7, 5, 3, 2, 2, 1, 1}
	if got := SummaryFromCounts(perm); got != want {
		t.Errorf("permuted counts gave %+v, want %+v", got, want)
	}
}
