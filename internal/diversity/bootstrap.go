package diversity

import (
	"math/rand"
	"sort"
)

// BootstrapCI is a percentile bootstrap confidence interval for a diversity
// statistic.
type BootstrapCI struct {
	// Point is the statistic on the full sample.
	Point float64
	// Lo and Hi bound the central Confidence mass of the bootstrap
	// distribution.
	Lo, Hi float64
	// Confidence is the nominal coverage (e.g. 0.95).
	Confidence float64
	// Resamples is the number of bootstrap draws used.
	Resamples int
}

// BootstrapEntropyCI estimates a confidence interval for the normalized
// Shannon entropy of a fingerprint distribution by resampling users with
// replacement. The paper compares normalized entropies across studies of
// different sizes (§5, §6); the interval quantifies how much of such a
// difference sampling noise alone could explain.
func BootstrapEntropyCI[T comparable](values []T, resamples int, confidence float64, seed int64) BootstrapCI {
	if resamples <= 0 {
		resamples = 1000
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	// The stable entropy keeps equal seeds bit-identical: Summarize's map
	// iteration randomizes the last ulp of the sum between calls.
	ci := BootstrapCI{
		Point:      NormalizedEntropyStable(values),
		Confidence: confidence,
		Resamples:  resamples,
	}
	if len(values) < 2 {
		ci.Lo, ci.Hi = ci.Point, ci.Point
		return ci
	}
	rng := rand.New(rand.NewSource(seed))
	stats := make([]float64, resamples)
	sample := make([]T, len(values))
	for b := 0; b < resamples; b++ {
		for i := range sample {
			sample[i] = values[rng.Intn(len(values))]
		}
		stats[b] = NormalizedEntropyStable(sample)
	}
	sort.Float64s(stats)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	ci.Lo, ci.Hi = stats[loIdx], stats[hiIdx]
	return ci
}
