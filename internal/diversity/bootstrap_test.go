package diversity

import (
	"math/rand"
	"testing"
)

func TestBootstrapCIContainsPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int, 500)
	for i := range vals {
		vals[i] = rng.Intn(40)
	}
	ci := BootstrapEntropyCI(vals, 500, 0.95, 1)
	if !(ci.Lo <= ci.Point+0.02 && ci.Hi >= ci.Point-0.02) {
		t.Errorf("CI [%.3f, %.3f] far from point %.3f", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Lo > ci.Hi {
		t.Errorf("inverted CI [%.3f, %.3f]", ci.Lo, ci.Hi)
	}
	if ci.Hi-ci.Lo <= 0 {
		t.Error("degenerate CI on a noisy sample")
	}
	if ci.Resamples != 500 || ci.Confidence != 0.95 {
		t.Errorf("metadata wrong: %+v", ci)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	vals := []string{"a", "a", "b", "c", "c", "c", "d"}
	a := BootstrapEntropyCI(vals, 200, 0.9, 7)
	b := BootstrapEntropyCI(vals, 200, 0.9, 7)
	if a != b {
		t.Error("same seed produced different CIs")
	}
	// Different seeds may legitimately coincide on a tiny discrete sample,
	// so determinism is only asserted for equal seeds.
}

func TestBootstrapCINarrowsWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func(n int) []int {
		v := make([]int, n)
		for i := range v {
			v[i] = rng.Intn(20)
		}
		return v
	}
	small := BootstrapEntropyCI(mk(80), 400, 0.95, 1)
	large := BootstrapEntropyCI(mk(2000), 400, 0.95, 1)
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Errorf("CI did not narrow with sample size: small %.4f, large %.4f",
			small.Hi-small.Lo, large.Hi-large.Lo)
	}
}

func TestBootstrapCIDegenerateInputs(t *testing.T) {
	one := BootstrapEntropyCI([]int{7}, 100, 0.95, 1)
	if one.Lo != one.Point || one.Hi != one.Point {
		t.Errorf("single-user CI not degenerate: %+v", one)
	}
	// Bad parameters fall back to defaults rather than panicking.
	ci := BootstrapEntropyCI([]int{1, 2, 3}, -5, 2.0, 1)
	if ci.Resamples != 1000 || ci.Confidence != 0.95 {
		t.Errorf("defaults not applied: %+v", ci)
	}
}
