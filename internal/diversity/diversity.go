// Package diversity implements the fingerprint diversity measures of the
// paper's §4: distinct and unique fingerprint counts, Shannon bit entropy
//
//	e = −Σ (uᵢ/U)·log₂(uᵢ/U)
//
// normalized entropy e/log₂(U) (comparable across study sizes), combination
// vectors (per-user tuples across fingerprinting techniques), and
// anonymity-set distributions.
package diversity

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary bundles the columns of the paper's Tables 2–4 for one vector.
type Summary struct {
	// Users is the population size U.
	Users int
	// Distinct is the number of distinct fingerprint values.
	Distinct int
	// Unique is the number of values held by exactly one user.
	Unique int
	// EntropyBits is the Shannon entropy in bits.
	EntropyBits float64
	// Normalized is EntropyBits / log₂(Users), in [0, 1].
	Normalized float64
}

// Summarize computes the Table 2-style summary of one fingerprint value per
// user.
func Summarize[T comparable](values []T) Summary {
	counts := make(map[T]int, len(values))
	for _, v := range values {
		counts[v]++
	}
	s := Summary{Users: len(values), Distinct: len(counts)}
	n := float64(len(values))
	for _, c := range counts {
		if c == 1 {
			s.Unique++
		}
		p := float64(c) / n
		s.EntropyBits -= p * math.Log2(p)
	}
	if s.EntropyBits < 0 {
		s.EntropyBits = 0
	}
	if len(values) > 1 {
		s.Normalized = s.EntropyBits / math.Log2(n)
	} else if len(values) == 1 {
		s.Normalized = 0
	}
	return s
}

// EntropyBits returns the Shannon entropy (bits) of the value distribution.
func EntropyBits[T comparable](values []T) float64 {
	return Summarize(values).EntropyBits
}

// NormalizedEntropy returns entropy divided by the maximum possible for the
// population size, log₂(U).
func NormalizedEntropy[T comparable](values []T) float64 {
	return Summarize(values).Normalized
}

// SummaryFromCounts computes a Summary from the multiset of group sizes
// (one entry per distinct value, holding how many users share it), with a
// deterministic floating-point summation order: sizes are sorted ascending
// before the entropy sum, so the same multiset always produces the same
// float regardless of the order counts were collected in. This is the
// shared kernel behind SummarizeStable and the streaming engine's
// snapshot rows — both sides of the batch/streaming equivalence property
// reduce to this function, which is what makes their entropies
// bit-identical rather than merely close.
func SummaryFromCounts(counts []int) Summary {
	cs := make([]int, len(counts))
	copy(cs, counts)
	sort.Ints(cs)
	s := Summary{Distinct: len(cs)}
	for _, c := range cs {
		s.Users += c
	}
	n := float64(s.Users)
	for _, c := range cs {
		if c == 1 {
			s.Unique++
		}
		p := float64(c) / n
		s.EntropyBits -= p * math.Log2(p)
	}
	if s.EntropyBits < 0 {
		s.EntropyBits = 0
	}
	if s.Users > 1 {
		s.Normalized = s.EntropyBits / math.Log2(n)
	}
	return s
}

// SummarizeStable is Summarize with the deterministic summation order of
// SummaryFromCounts. Prefer it anywhere two independently computed
// summaries must compare equal as floats.
func SummarizeStable[T comparable](values []T) Summary {
	counts := make(map[T]int, len(values))
	for _, v := range values {
		counts[v]++
	}
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return SummaryFromCounts(cs)
}

// NormalizedEntropyStable is NormalizedEntropy with a deterministic
// floating-point summation order: group counts are sorted before the
// entropy sum, so repeated calls — and parallel sweeps that must be
// bit-identical to their serial counterparts — always produce the same
// float. (Summarize iterates a map, which randomizes the last ulp of the
// sum from run to run.)
func NormalizedEntropyStable[T comparable](values []T) float64 {
	return SummarizeStable(values).Normalized
}

// Combine builds the combination vector of several fingerprinting
// techniques: element i of the result encodes the tuple of all vectors'
// values for user i (the paper's (fᵢ, gᵢ, hᵢ, …) construction). All input
// slices must have equal length. By construction the combination's
// diversity is at least that of its most diverse component.
func Combine[T comparable](vectors ...[]T) ([]string, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("diversity: no vectors to combine")
	}
	n := len(vectors[0])
	for k, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("diversity: vector %d has %d users, want %d", k, len(v), n)
		}
	}
	out := make([]string, n)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.Reset()
		for k := range vectors {
			if k > 0 {
				b.WriteByte('\x1f') // unit separator avoids tuple ambiguity
			}
			fmt.Fprintf(&b, "%v", vectors[k][i])
		}
		out[i] = b.String()
	}
	return out, nil
}

// AnonymitySets returns the distribution of anonymity-set sizes: for each
// fingerprint value held by k users, one set of size k. Keys are set sizes,
// values how many sets have that size.
func AnonymitySets[T comparable](values []T) map[int]int {
	counts := make(map[T]int, len(values))
	for _, v := range values {
		counts[v]++
	}
	out := make(map[int]int)
	for _, c := range counts {
		out[c]++
	}
	return out
}

// DistinctPerGroup returns, for each group key, how many distinct values
// appear within it — the computation behind the paper's Table 5 (distinct
// DC / Math-JS fingerprints per platform) and the §4 UA-span analysis.
func DistinctPerGroup[G comparable, T comparable](groups []G, values []T) (map[G]int, error) {
	if len(groups) != len(values) {
		return nil, fmt.Errorf("diversity: %d groups vs %d values", len(groups), len(values))
	}
	seen := make(map[G]map[T]struct{})
	for i, g := range groups {
		m, ok := seen[g]
		if !ok {
			m = make(map[T]struct{})
			seen[g] = m
		}
		m[values[i]] = struct{}{}
	}
	out := make(map[G]int, len(seen))
	for g, m := range seen {
		out[g] = len(m)
	}
	return out, nil
}

// GroupSizes returns the number of items per group key.
func GroupSizes[G comparable](groups []G) map[G]int {
	out := make(map[G]int)
	for _, g := range groups {
		out[g]++
	}
	return out
}

// Histogram returns the sorted (value count, frequency) pairs of how many
// users hold 1, 2, 3, … distinct fingerprints — the data behind Fig. 3.
type Histogram struct {
	// Bins maps a count to how many users have that count.
	Bins map[int]int
}

// NewHistogram tallies per-user counts.
func NewHistogram(counts []int) Histogram {
	h := Histogram{Bins: make(map[int]int)}
	for _, c := range counts {
		h.Bins[c]++
	}
	return h
}

// SortedBins returns the bins in ascending count order.
func (h Histogram) SortedBins() (counts []int, freqs []int) {
	for c := range h.Bins {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	freqs = make([]int, len(counts))
	for i, c := range counts {
		freqs[i] = h.Bins[c]
	}
	return counts, freqs
}

// CDF returns the cumulative fraction of users at or below each bin of
// SortedBins.
func (h Histogram) CDF() (counts []int, cum []float64) {
	counts, freqs := h.SortedBins()
	total := 0
	for _, f := range freqs {
		total += f
	}
	cum = make([]float64, len(counts))
	run := 0
	for i, f := range freqs {
		run += f
		cum[i] = float64(run) / float64(total)
	}
	return counts, cum
}
