// Package bench holds the repository-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation (timing the analysis that
// regenerates it over a shared simulated dataset), plus ablation benchmarks
// for the design choices called out in DESIGN.md §5. Full-scale artifact
// regeneration is `go run ./cmd/fpstudy`; paper-vs-measured numbers live in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/population"
	"repro/internal/study"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

// The shared benchmark dataset: smaller than the paper's campaign so each
// `go test -bench` run stays quick, but large enough that every analysis
// exercises its real code paths. Built once.
var (
	benchOnce sync.Once
	benchDS   *study.Dataset
	benchFU   *study.Dataset
	benchErr  error
)

func datasets(b *testing.B) (*study.Dataset, *study.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = study.Run(study.Config{
			Seed: core.MainStudySeed, Users: 500, Iterations: 16,
		})
		if benchErr != nil {
			return
		}
		benchFU, benchErr = study.Run(study.Config{
			Seed: core.FollowUpSeed, Users: 200, Iterations: 16,
			Mix: population.FollowUpMix(), IDPrefix: "f",
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS, benchFU
}

// BenchmarkTable1 regenerates the per-user stability statistics.
func BenchmarkTable1(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := ds.Table1(); len(rows) != 7 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFigure3 regenerates the distinct-Hybrid-fingerprint histogram.
func BenchmarkFigure3(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := ds.Figure3(vectors.Hybrid)
		if len(h.Bins) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkFigure5 regenerates the cluster-agreement sweep (the heaviest
// analysis: ⌊k/s⌋ graphs per vector per s plus pairwise AMI).
func BenchmarkFigure5(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.AgreementScores([]int{2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6 regenerates the fingerprint match scores.
func BenchmarkTable6(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := ds.MatchScores([]int{3, 8}); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable2 regenerates the audio-diversity table (collation graphs +
// entropy + combination vector).
func BenchmarkTable2(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := ds.Table2(); len(rows) != 8 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable3 regenerates the Canvas/Fonts/UA diversity table.
func BenchmarkTable3(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := ds.Table3(); len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkUASpan regenerates the §4 W3C-refutation analysis.
func BenchmarkUASpan(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ds.UASpan(vectors.MergedSignals)
		if res.MultiUserUAs == 0 {
			b.Fatal("no multi-user UAs")
		}
	}
}

// BenchmarkAdditive regenerates the §4 additive-value computation.
func BenchmarkAdditive(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ds.AdditiveValue("Canvas", ds.Canvas)
		if r.WithAudio.EntropyBits < r.Base.EntropyBits {
			b.Fatal("additive value negative")
		}
	}
}

// BenchmarkFigure9 regenerates the cross-vector AMI heatmap.
func BenchmarkFigure9(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.PairwiseVectorAMI(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubsetRanking regenerates the §5 robustness check.
func BenchmarkSubsetRanking(b *testing.B) {
	ds, _ := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := ds.SubsetRanking(4); len(res.Rankings) != 4 {
			b.Fatal("wrong subset count")
		}
	}
}

// BenchmarkTable4 regenerates the follow-up Math-JS comparison.
func BenchmarkTable4(b *testing.B) {
	_, fu := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := fu.Table4(); len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable5 regenerates the follow-up per-platform comparison.
func BenchmarkTable5(b *testing.B) {
	_, fu := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := fu.Table5(10); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFullEvaluation renders every artifact end to end, the fpstudy
// hot path.
func BenchmarkFullEvaluation(b *testing.B) {
	ds, fu := datasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.WriteAllExperiments(io.Discard, ds, fu); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudySimulation measures the end-to-end cost of simulating a
// study (population + rendering + jitter), per 100 users.
func BenchmarkStudySimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := study.Run(study.Config{
			Seed: int64(i), Users: 100, Iterations: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §5).

// BenchmarkCollationUnionFind: the incremental-only disjoint-set backend.
func BenchmarkCollationUnionFind(b *testing.B) {
	b.ReportAllocs()
	g := collate.NewGraph()
	for i := 0; i < b.N; i++ {
		g.AddObservation(fmt.Sprintf("u%d", i%5000), fmt.Sprintf("h%d", i%800))
	}
}

// BenchmarkCollationDynamic: the fully-dynamic HDT backend on the same
// insert workload — the price paid for deletion support.
func BenchmarkCollationDynamic(b *testing.B) {
	b.ReportAllocs()
	g := collate.NewExpiringGraph()
	for i := 0; i < b.N; i++ {
		g.AddObservation(fmt.Sprintf("u%d", i%5000), fmt.Sprintf("h%d", i%800))
	}
}

// BenchmarkHashFullBuffer vs BenchmarkHashSummary: hashing the full rendered
// window (what this repo and modern scripts do) versus reducing to the
// paper-era scalar sum first. The scalar is cheaper but collides more.
func BenchmarkHashFullBuffer(b *testing.B) {
	r := vectors.NewRunner(webaudio.DefaultTraits(), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(vectors.DC, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashSummary(b *testing.B) {
	r := vectors.NewRunner(webaudio.DefaultTraits(), 0)
	fp, err := r.Run(vectors.DC, 0)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float32, 500)
	for i := range buf {
		buf[i] = float32(fp.Sum) / float32(i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := dsp.SumAbs(buf); s == 0 {
			b.Fatal("zero sum")
		}
	}
}

// ---------------------------------------------------------------------------
// Block-engine benchmarks (DESIGN.md §12): per-kernel microbenchmarks and the
// full-vector render, each run under the compiled block engine and the
// per-sample reference engine. The two are bit-identical by contract (the
// webaudio differential tests), so the delta here is pure speedup.

// benchEngines runs fn once per engine as a sub-benchmark.
func benchEngines(b *testing.B, fn func(b *testing.B)) {
	for _, eng := range []webaudio.Engine{webaudio.EngineBlock, webaudio.EngineReference} {
		b.Run(eng.String(), func(b *testing.B) {
			prev := webaudio.SetDefaultEngine(eng)
			defer webaudio.SetDefaultEngine(prev)
			fn(b)
		})
	}
}

// benchRenderGraph benchmarks steady-state quantum rendering of the graph
// build wires into a fresh context (compile + warmup excluded).
func benchRenderGraph(b *testing.B, build func(ctx *webaudio.Context)) {
	b.Helper()
	ctx := webaudio.NewContext(44100, webaudio.DefaultTraits())
	build(ctx)
	if err := ctx.RenderQuanta(2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.RenderQuanta(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelOscillator: the wavetable-read kernel alone.
func BenchmarkKernelOscillator(b *testing.B) {
	benchEngines(b, func(b *testing.B) {
		benchRenderGraph(b, func(ctx *webaudio.Context) {
			osc := ctx.NewOscillator(webaudio.Triangle, 10000)
			osc.Start(0)
			webaudio.Connect(osc, ctx.Destination())
		})
	})
}

// BenchmarkKernelBiquad: oscillator through a lowpass biquad.
func BenchmarkKernelBiquad(b *testing.B) {
	benchEngines(b, func(b *testing.B) {
		benchRenderGraph(b, func(ctx *webaudio.Context) {
			osc := ctx.NewOscillator(webaudio.Sawtooth, 2000)
			osc.Start(0)
			bq := ctx.NewBiquadFilter(webaudio.Lowpass)
			bq.Frequency.SetValue(8000)
			webaudio.Connect(osc, bq)
			webaudio.Connect(bq, ctx.Destination())
		})
	})
}

// BenchmarkKernelCompressor: the DC vector's hot node (kernel Log/Pow per
// sample — the fingerprint surface — dominates both engines).
func BenchmarkKernelCompressor(b *testing.B) {
	benchEngines(b, func(b *testing.B) {
		benchRenderGraph(b, func(ctx *webaudio.Context) {
			osc := ctx.NewOscillator(webaudio.Triangle, 10000)
			osc.Start(0)
			dc := ctx.NewDynamicsCompressor()
			webaudio.Connect(osc, dc)
			webaudio.Connect(dc, ctx.Destination())
		})
	})
}

// BenchmarkKernelDestinationMix: four oscillators fanned into the
// destination — the Merged Signals mix shape, exercising the once-per-block
// input mixer against per-sample virtual sumInputs.
func BenchmarkKernelDestinationMix(b *testing.B) {
	benchEngines(b, func(b *testing.B) {
		benchRenderGraph(b, func(ctx *webaudio.Context) {
			for _, f := range []float64{4000, 6000, 8000, 10000} {
				osc := ctx.NewOscillator(webaudio.Sine, f)
				osc.Start(0)
				webaudio.Connect(osc, ctx.Destination())
			}
		})
	})
}

// BenchmarkKernelAMGain: audio-rate param modulation (the AM vector's
// carrier gain), the a-rate blockSample path.
func BenchmarkKernelAMGain(b *testing.B) {
	benchEngines(b, func(b *testing.B) {
		benchRenderGraph(b, func(ctx *webaudio.Context) {
			carrier := ctx.NewOscillator(webaudio.Sine, 10000)
			carrier.Start(0)
			mod := ctx.NewOscillator(webaudio.Sine, 50)
			mod.Start(0)
			am := ctx.NewGain(0.5)
			webaudio.ConnectParam(mod, am.Gain)
			webaudio.Connect(carrier, am)
			webaudio.Connect(am, ctx.Destination())
		})
	})
}

// BenchmarkRenderVectors: all seven fingerprinting vectors end to end
// (graph build + render + hash) — the study's per-platform unit of work and
// the number the block engine exists to improve.
func BenchmarkRenderVectors(b *testing.B) {
	benchEngines(b, func(b *testing.B) {
		r := vectors.NewRunner(webaudio.DefaultTraits(), 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.RunAll(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAnalyserFFTSizes: analyser capture cost across fftSize choices —
// why fingerprint scripts settled on 2048.
func BenchmarkAnalyserFFTSizes(b *testing.B) {
	for _, size := range []int{512, 2048, 8192} {
		b.Run(fmt.Sprintf("fft%d", size), func(b *testing.B) {
			ctx := webaudio.NewContext(44100, webaudio.DefaultTraits())
			osc := ctx.NewOscillator(webaudio.Triangle, 10000)
			an, err := ctx.NewAnalyser(size)
			if err != nil {
				b.Fatal(err)
			}
			webaudio.Connect(osc, an)
			webaudio.Connect(an, ctx.Destination())
			osc.Start(0)
			if err := ctx.RenderQuanta(size / webaudio.RenderQuantum * 2); err != nil {
				b.Fatal(err)
			}
			out := make([]float32, an.FrequencyBinCount())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := an.GetFloatFrequencyData(out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
