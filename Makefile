# Development targets for the audiofp reproduction.

GO ?= go

.PHONY: all build vet test test-short bench fuzz study examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . && test -z "$$(gofmt -l .)"

# Full suite, including the 2093-user fixture (~1-2 min).
test:
	$(GO) test ./...

# Skips the rendering sweeps.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over the parsing/ingestion surfaces.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStoreScan -fuzztime 20s ./internal/storage/
	$(GO) test -run '^$$' -fuzz FuzzSubmitHandler -fuzztime 20s ./internal/collectserver/

# Regenerate every table and figure at paper scale.
study:
	$(GO) run ./cmd/fpstudy

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tracker
	$(GO) run ./examples/additive
	$(GO) run ./examples/collection
	$(GO) run ./examples/mitigation

clean:
	rm -f collection-demo.ndjson fingerprints.ndjson
	rm -rf internal/storage/testdata internal/collectserver/testdata
