# Development targets for the audiofp reproduction.

GO ?= go

.PHONY: all build vet test test-short check bench bench-json bench-stream bench-render bench-shard bench-verify bench-gate fuzz study trace examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . && test -z "$$(gofmt -l .)"

# Full suite, including the 2093-user fixture (~1-2 min).
test:
	$(GO) test ./...

# Skips the rendering sweeps.
test-short:
	$(GO) test -short ./...

# Everything CI should gate on: build, vet/gofmt, the race detector over the
# internal packages (the telemetry registry/span tree, series store and the
# watch monitor first — spans/exporter/series ticks/alert evaluation cross
# goroutines in every binary — then the parallel sweeps and shared caches),
# the full suite, a short fuzz pass over the ingestion surfaces (10s per
# target, seeded from the checked-in torn/corrupt corpora), and a
# report-only bench-gate comparison against the committed render trajectory
# (shared CI runners are too noisy to enforce here; nightly enforces).
check: build vet
	$(GO) test -race ./internal/obs/ ./internal/obs/series/ ./internal/watch/ ./internal/webaudio/ ./internal/diag/
	$(GO) test -race ./internal/shard/
	$(GO) test -race ./internal/...
	$(GO) test ./...
	$(GO) test -run '^$$' -fuzz FuzzStoreScan -fuzztime 10s ./internal/storage/
	$(GO) test -run '^$$' -fuzz FuzzSubmitHandler -fuzztime 10s ./internal/collectserver/
	$(GO) test -run '^$$' -fuzz FuzzParseTraceparent -fuzztime 10s ./internal/obs/
	$(GO) test -run '^$$' -fuzz FuzzShardOf -fuzztime 10s ./internal/shard/
	$(GO) test -run '^$$' -fuzz FuzzMergedSnapshotJSON -fuzztime 10s ./internal/shard/
	$(MAKE) bench-gate GATE_FLAGS=-report-only GATE_COUNT=1

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: BENCH_<date>.json with name, ns/op,
# B/op and allocs/op per benchmark.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_$$(date +%F).json
	@echo wrote BENCH_$$(date +%F).json

# Block-vs-reference DSP engine comparison: per-kernel microbenchmarks plus
# the full-vector render under both engines (DESIGN.md §12). The block/...
# rows must come out ≥2× faster than their reference/... counterparts on the
# full-vector render.
bench-render:
	$(GO) test -run '^$$' -bench 'Kernel|RenderVectors' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_render.json
	@echo wrote BENCH_render.json

# Regression gate: rerun the render benchmarks (min of GATE_COUNT samples)
# and compare against the committed BENCH_render.json trajectory. Fails on
# >GATE_TOL relative slowdown or any allocation on a zero-alloc baseline.
# GATE_FLAGS=-report-only prints the comparison without failing.
GATE_COUNT ?= 3
GATE_TOL   ?= 0.30
GATE_BENCHTIME ?= 10x
bench-gate:
	$(GO) test -run '^$$' -bench 'Kernel|RenderVectors' -benchmem -benchtime $(GATE_BENCHTIME) -count $(GATE_COUNT) . \
		| $(GO) run ./cmd/benchjson > /tmp/BENCH_gate.json
	$(GO) run ./cmd/benchgate -base BENCH_render.json -new /tmp/BENCH_gate.json \
		-tolerance $(GATE_TOL) $(GATE_FLAGS)

# Streaming-vs-batch cost at the paper's 2093-user scale: incremental apply
# must come out ≥100× cheaper than the batch recompute (DESIGN.md §10.2).
bench-stream:
	$(GO) test -run '^$$' -bench BenchmarkStream -benchmem ./internal/streaming/ | $(GO) run ./cmd/benchjson > BENCH_stream.json
	@echo wrote BENCH_stream.json

# Sharded-vs-single cost at the paper's 2093-user scale: per-record routing
# overhead, the cold cross-shard merge, and the cached read (DESIGN.md §14).
bench-shard:
	$(GO) test -run '^$$' -bench BenchmarkShard -benchmem ./internal/shard/ | $(GO) run ./cmd/benchjson > BENCH_shard.json
	@echo wrote BENCH_shard.json

# Verification decision latency at enrolled-population scale: the serving
# path behind POST /api/v1/verify, serial and parallel (DESIGN.md §15).
bench-verify:
	$(GO) test -run '^$$' -bench BenchmarkVerify -benchmem ./internal/verify/ | $(GO) run ./cmd/benchjson > BENCH_verify.json
	@echo wrote BENCH_verify.json

# Short fuzzing passes over the parsing/ingestion surfaces.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStoreScan -fuzztime 20s ./internal/storage/
	$(GO) test -run '^$$' -fuzz FuzzSubmitHandler -fuzztime 20s ./internal/collectserver/
	$(GO) test -run '^$$' -fuzz FuzzParseTraceparent -fuzztime 20s ./internal/obs/
	$(GO) test -run '^$$' -fuzz FuzzShardOf -fuzztime 20s ./internal/shard/
	$(GO) test -run '^$$' -fuzz FuzzMergedSnapshotJSON -fuzztime 20s ./internal/shard/

# Regenerate every table and figure at paper scale.
study:
	$(GO) run ./cmd/fpstudy

# Small traced run: prints the pipeline stage-timing tree (stderr), discards
# the tables.
trace:
	$(GO) run ./cmd/fpstudy -users 150 -followup-users 50 -iterations 5 \
		-evolution-users 0 -progress -trace > /dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tracker
	$(GO) run ./examples/additive
	$(GO) run ./examples/collection
	$(GO) run ./examples/mitigation

# Note: testdata/fuzz seed corpora and golden files are checked in — clean
# must not remove them.
clean:
	rm -f collection-demo.ndjson fingerprints.ndjson
